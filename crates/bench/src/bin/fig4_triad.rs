//! Figure 4: vector triad performance vs array length for different
//! alignment/offset constraints, on the simulated UltraSPARC T2.
//!
//! The paper scans N ∈ [9 990 050, 9 990 250] (64 threads) and compares
//! plain `malloc` arrays, 8 kB-aligned arrays, and 8 kB alignment plus
//! byte offsets 32/64/128 (B, C, D shifted by 1×, 2×, 3× the offset).
//!
//! ```text
//! cargo run --release -p t2opt-bench --bin fig4_triad             # scaled default
//! cargo run --release -p t2opt-bench --bin fig4_triad -- --full   # paper-size window
//! ```
//!
//! Expected shape: the plain line erratic with period 64 (DP words)
//! between a hard ceiling and a hard floor; align-8k pinned to the floor;
//! offset 128 pinned to the ceiling; offsets 32/64 in between (32 stays on
//! one controller — banks only; 64 reaches two controllers).

use t2opt_bench::experiments::{fig4_series, n_range};
use t2opt_bench::{write_json, Args, Table};
use t2opt_kernels::triad::TriadLayout;
use t2opt_sim::ChipConfig;

fn main() {
    let args = Args::from_env();
    let full = args.has_flag("full");
    // The aliasing pattern depends on N·8 mod 512, so any window of ≥ 64
    // consecutive N shows the full period; the paper's window starts at
    // 9,990,050. The scaled default uses a smaller base (arrays still ≫ L2).
    let (lo_default, hi_default) = if full {
        (9_990_050, 9_990_250)
    } else {
        (2_000_000, 2_000_128)
    };
    let lo: usize = args.get("lo", lo_default);
    let hi: usize = args.get("hi", hi_default);
    let step: usize = args.get("step", 2);
    let threads: usize = args.get("threads", 64);
    let chip = ChipConfig::ultrasparc_t2();

    let layouts = [
        TriadLayout::Plain,
        TriadLayout::Align8k,
        TriadLayout::AlignOffset(32),
        TriadLayout::AlignOffset(64),
        TriadLayout::AlignOffset(128),
    ];

    eprintln!("fig4: vector triad, N ∈ [{lo}, {hi}] step {step}, {threads} threads");
    let ns = n_range(lo, hi, step);
    let rows = fig4_series(&chip, &ns, &layouts, threads);

    let mut table = Table::new(vec!["N", "layout", "GB/s"]);
    for r in &rows {
        table.row(vec![
            r.n.to_string(),
            r.layout.clone(),
            format!("{:.2}", r.gbs),
        ]);
    }
    table.print();

    println!();
    let mut summary = Table::new(vec!["layout", "min GB/s", "max GB/s", "mean GB/s"]);
    for layout in &layouts {
        let label = layout.label();
        let series: Vec<f64> = rows
            .iter()
            .filter(|r| r.layout == label)
            .map(|r| r.gbs)
            .collect();
        let min = series.iter().copied().fold(f64::INFINITY, f64::min);
        let max = series.iter().copied().fold(0.0, f64::max);
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        summary.row(vec![
            label,
            format!("{min:.2}"),
            format!("{max:.2}"),
            format!("{mean:.2}"),
        ]);
    }
    summary.print();

    if let Some(path) = args.get_str("json") {
        write_json(path, &rows).expect("failed to write JSON");
        eprintln!("wrote {path}");
    }
}
