//! Ablation A3: OpenMP schedule choice for the Jacobi solver.
//!
//! §2.3: "An OpenMP schedule of 'static,1' has to be used for optimal
//! performance. This is because the 4 MB L2 cache of the processor is too
//! small to accommodate a sufficient number of rows when using 64 threads
//! if the addresses are too far apart." With `static,1` neighbouring rows
//! are processed concurrently and shared in the L2; with plain `static`
//! each thread streams an isolated block and the combined working set
//! blows the cache.
//!
//! ```text
//! cargo run --release -p t2opt-bench --bin ablation_schedule
//! ```

use t2opt_bench::{write_json, Args, Table};
use t2opt_kernels::jacobi::{run_sim, JacobiConfig, JacobiLayout};
use t2opt_parallel::{Placement, Schedule};
use t2opt_sim::ChipConfig;

fn main() {
    let args = Args::from_env();
    let threads: usize = args.get("threads", 64);
    let ns = args.get_list::<usize>("n", &[512, 1024, 1536, 2000]);
    let chip = ChipConfig::ultrasparc_t2();

    #[derive(serde::Serialize)]
    struct Row {
        n: usize,
        schedule: String,
        mlups: f64,
        l2_hit_rate: f64,
    }
    let mut rows = Vec::new();

    let schedules: Vec<(&str, Schedule)> = vec![
        ("static", Schedule::Static),
        ("static,1", Schedule::StaticChunk(1)),
        ("static,4", Schedule::StaticChunk(4)),
    ];

    let mut table = Table::new(vec!["N", "schedule", "MLUPs/s", "L2 hit rate"]);
    for &n in &ns {
        for (name, schedule) in &schedules {
            let cfg = JacobiConfig {
                n,
                threads,
                schedule: *schedule,
                layout: JacobiLayout::Optimized,
                sweeps: 2,
            };
            let res = run_sim(&cfg, &chip, &Placement::t2_scatter());
            table.row(vec![
                n.to_string(),
                name.to_string(),
                format!("{:.0}", res.mlups),
                format!("{:.3}", res.l2_hit_rate),
            ]);
            rows.push(Row {
                n,
                schedule: name.to_string(),
                mlups: res.mlups,
                l2_hit_rate: res.l2_hit_rate,
            });
        }
    }
    table.print();
    println!(
        "\nstatic,1 keeps concurrently processed rows adjacent, so source rows are\n\
         shared through the L2 (higher hit rate); plain static isolates each\n\
         thread's rows and the combined working set overflows the 4 MB cache at\n\
         large N — exactly the paper's argument for static,1."
    );

    if let Some(path) = args.get_str("json") {
        write_json(path, &rows).expect("failed to write JSON");
        eprintln!("wrote {path}");
    }
}
