//! Empirical layout autotuning driver: searches the Fig. 3 parameter
//! space for a stream workload on the simulated T2 and cross-validates the
//! result against the analytic advisor.
//!
//! ```text
//! cargo run --release -p t2opt-bench --bin autotune                   # Fig. 4 offset sweep
//! cargo run --release -p t2opt-bench --bin autotune -- --grid         # full 4-D default grid
//! cargo run --release -p t2opt-bench --bin autotune -- --strategy descent
//! cargo run --release -p t2opt-bench --bin autotune -- --strategy seeded
//! cargo run --release -p t2opt-bench --bin autotune -- --strategy anneal --seed 42
//! cargo run --release -p t2opt-bench --bin autotune -- --strategy transfer --cache tune.json
//! cargo run --release -p t2opt-bench --bin autotune -- --strategy model   # surrogate pre-filter
//! cargo run --release -p t2opt-bench --bin autotune -- --workload lbm-ijkv   # Fig. 7 sweep
//! cargo run --release -p t2opt-bench --bin autotune -- --workload jacobi
//! cargo run --release -p t2opt-bench --bin autotune -- --smoke        # CI-sized problem
//! cargo run --release -p t2opt-bench --bin autotune -- --cache results/tune.json
//! ```
//!
//! `--workload` picks the kernel to tune: `mix` (default stream mix),
//! `triad`, `jacobi`, or `lbm-ijkv` / `lbm-ivjk` (the Fig. 7 D3Q19
//! propagation step in either layout; these default to the LBM padding
//! sweep instead of the offset sweep). For LBM and Jacobi, `--n` is the
//! cubic interior dimension, not the array length.
//!
//! With `--cache`, re-running the same sweep is incremental: already
//! measured candidates are served from the content-addressed cache and the
//! report counts zero new simulations. A shared cache also powers
//! `--strategy transfer`: the search starts from the best layout another
//! kernel family cached on the same chip.
//!
//! `--telemetry <path>` records a span per simulated trial plus cache and
//! pool counters, and writes them as a Chrome-trace file after the run.
//!
//! `--chip <preset>` tunes for a different simulated topology (default
//! `ultrasparc-t2`): the sweep grids, the advisor cross-validation, and
//! the cache fingerprints all follow that chip's interleave period, and
//! the JSON output records the preset name.
//!
//! `--policy <fifo|read-first|fr-fcfs[:cap]>` selects the controllers'
//! queue-arbitration discipline (default `fifo`). The chip fingerprint
//! covers it, so cached results for different policies never mix.

use serde::Serialize;
use std::sync::Arc;
use t2opt_autotune::{ParamSpace, ResultCache, SearchStrategy, TuneReport, Tuner, Workload};
use t2opt_bench::{chip_from_args, write_json, Args, Table};
use t2opt_kernels::lbm::LbmLayout;
use t2opt_telemetry::metrics::Sink;
use t2opt_telemetry::prelude::spans_chrome_trace;

/// Result-cache effectiveness for this run: how many trials were served
/// from the store vs freshly simulated, and how many entries the cache
/// holds afterwards (what a `--cache` file would persist).
#[derive(Serialize)]
struct CacheStats {
    hits: u64,
    misses: u64,
    entries: usize,
}

/// JSON envelope recording which chip preset and queue policy the tuning
/// ran on.
#[derive(Serialize)]
struct AutotuneOutput {
    chip: String,
    policy: String,
    cache: CacheStats,
    report: TuneReport,
}

fn main() {
    let args = Args::from_env();
    if args.has_flag("list-chips") {
        t2opt_bench::list_chips();
    }
    let smoke = args.has_flag("smoke");
    let (spec, chip) = chip_from_args(&args);
    let policy_name = chip.policy.name();
    let threads: usize = args
        .get("threads", if smoke { 16 } else { 64 })
        .min(chip.max_threads());

    let kind = args.get_str("workload").unwrap_or("mix").to_string();
    let workload = match kind.as_str() {
        "mix" => Workload::StreamMix {
            reads: args.get("reads", 2),
            writes: args.get("writes", 1),
            n: args.get("n", if smoke { 1 << 12 } else { 1 << 19 }),
            threads,
            ntimes: 1,
            warmup: !smoke,
        },
        "triad" => {
            let n = args.get("n", if smoke { 1 << 12 } else { 1 << 19 });
            if smoke {
                Workload::triad_smoke(n, threads)
            } else {
                Workload::triad(n, threads)
            }
        }
        "jacobi" => {
            let dim = args.get("n", if smoke { 64 } else { 512 });
            if smoke {
                Workload::jacobi_smoke(dim, threads)
            } else {
                Workload::jacobi(dim, threads)
            }
        }
        "lbm-ijkv" | "lbm-ivjk" => {
            let layout = if kind == "lbm-ijkv" {
                LbmLayout::IJKv
            } else {
                LbmLayout::IvJK
            };
            let n = args.get("n", if smoke { 16 } else { 34 });
            if smoke {
                Workload::lbm_smoke(n, layout, threads)
            } else {
                Workload::lbm(n, layout, threads)
            }
        }
        other => panic!("unknown workload {other:?} (mix | triad | jacobi | lbm-ijkv | lbm-ivjk)"),
    };
    let space = if args.has_flag("grid") {
        ParamSpace::for_chip(&spec)
    } else if kind.starts_with("lbm") {
        ParamSpace::lbm_padding_sweep()
    } else {
        // The Fig. 4 sweep over one interleave period; `--step` overrides
        // the granularity (T2 default: 64 B steps over 512 B).
        let period = spec.interleave_period();
        let step = args.get("step", (period / 8).max(spec.line_size()));
        ParamSpace::offset_sweep(step, period)
    };
    let strategy = match args.get_str("strategy").unwrap_or("exhaustive") {
        "exhaustive" => SearchStrategy::Exhaustive,
        "descent" => SearchStrategy::coordinate_descent(),
        "seeded" => SearchStrategy::advisor_seeded(),
        "anneal" => SearchStrategy::simulated_annealing(args.get("seed", 42)),
        "transfer" => SearchStrategy::transfer_seeded(),
        "model" => SearchStrategy::model_pruned(),
        other => {
            panic!(
                "unknown strategy {other:?} \
                 (exhaustive | descent | seeded | anneal | transfer | model)"
            )
        }
    };

    let mut tuner = Tuner::new(workload.clone(), chip, space).strategy(strategy);
    if let Some(path) = args.get_str("cache") {
        tuner = tuner.cache(ResultCache::at_path(path).expect("failed to load result cache"));
    }
    let sink = args.get_str("telemetry").map(|_| Sink::enabled());
    if let Some(s) = &sink {
        tuner = tuner.telemetry(Arc::clone(s));
    }

    eprintln!(
        "autotune: {} workload on {} ({} controllers), N = {}, {threads} threads, {strategy:?}",
        workload.tag(),
        spec.name,
        policy_name,
        workload.n()
    );
    let report = tuner.run();

    let mut table = Table::new(vec![
        "base_align",
        "seg_align",
        "shift",
        "block_offset",
        "GB/s",
        "pred.eff",
        "cached",
    ]);
    for t in &report.trials {
        table.row(vec![
            t.spec.base_align.to_string(),
            t.spec.seg_align.to_string(),
            t.spec.shift.to_string(),
            t.spec.block_offset.to_string(),
            format!("{:.2}", t.gbs),
            format!("{:.2}", t.predicted_efficiency),
            if t.from_cache {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    table.print();

    println!(
        "\nbest: base_align {} seg_align {} shift {} block_offset {} -> {:.2} GB/s ({:.2}x over worst)",
        report.best.spec.base_align,
        report.best.spec.seg_align,
        report.best.spec.shift,
        report.best.spec.block_offset,
        report.best.gbs,
        report.best_over_worst(),
    );
    println!(
        "trials: {} ({} simulated, {} cache hits)",
        report.trials.len(),
        report.simulations_run,
        report.cache_hits
    );
    match report.agreement.spearman {
        Some(rho) => println!("advisor agreement: Spearman rho = {rho:.3}"),
        None => println!("advisor agreement: undefined (degenerate sweep)"),
    }
    if report.agreement.divergences.is_empty() {
        println!(
            "no divergences beyond {:.0}%",
            report.agreement.tolerance * 100.0
        );
    }
    for d in &report.agreement.divergences {
        println!(
            "divergence: offset {} measured {:.0}% vs predicted {:.0}% of best",
            d.spec.block_offset,
            d.measured_rel * 100.0,
            d.predicted_rel * 100.0
        );
    }

    if let Some(path) = args.get_str("json") {
        let out = AutotuneOutput {
            chip: spec.name.clone(),
            policy: policy_name.to_string(),
            cache: CacheStats {
                hits: report.cache_hits,
                misses: report.cache_misses,
                entries: tuner.cache_ref().len(),
            },
            report: report.clone(),
        };
        write_json(path, &out).expect("failed to write JSON");
        eprintln!("wrote {path}");
    }

    if let (Some(path), Some(sink)) = (args.get_str("telemetry"), &sink) {
        for (name, value) in sink.counter_values() {
            println!("telemetry: {name} = {value}");
        }
        let trace = spans_chrome_trace(&sink.spans(), &sink.counter_values());
        std::fs::write(path, trace).expect("failed to write Chrome trace");
        eprintln!("wrote Chrome trace {path}");
    }
}
