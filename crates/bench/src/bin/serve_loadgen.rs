//! Load generator for the `t2opt-serve` advice daemon: drives concurrent
//! keep-alive clients across the chip-preset × workload matrix and reports
//! throughput plus p50/p99 latency for the cold-miss (advisor/model tier)
//! and warm-hit (cache tier) paths.
//!
//! ```text
//! cargo run --release -p t2opt-bench --bin serve_loadgen -- --quick --json BENCH_serve.json
//! cargo run --release -p t2opt-bench --bin serve_loadgen                      # full matrix
//! cargo run --release -p t2opt-bench --bin serve_loadgen -- --addr 127.0.0.1:8080
//! ```
//!
//! Without `--addr` the daemon is started in-process on an ephemeral port
//! with an in-memory store, so the benchmark is self-contained. The run
//! has four phases:
//!
//! 1. **cold pass** — every distinct query once; answers must come from
//!    the advisor/model tier (no query ever blocks on a simulation),
//! 2. **settle** — poll `/metrics` until the background refinement queue
//!    drains (every cold query upgraded to a measured store entry),
//! 3. **warm pass** — `--clients` threads (persistent connections) hammer
//!    the same matrix round-robin for `--requests` total queries; answers
//!    must now come from the cache tier,
//! 4. **p99 cross-check** (in-process runs only) — a dedicated
//!    single-worker server with refinement disabled answers
//!    `--xcheck-requests` sequential advisor-tier queries; the client p99
//!    must land within one log2 bucket of the p99 recovered from the
//!    server's latency histogram over the Prometheus exposition.
//!
//! The JSON envelope cross-checks the client-side tier counts against the
//! server's own `/metrics` counters (`consistent: true`) and carries the
//! phase-4 verdict (`p99_bucket_consistent: true`).
//!
//! `--no-trace` disables request tracing and lock-wait timing on an
//! in-process server (the always-on counters and latency histograms keep
//! working), for measuring the tracing-off overhead contract.

use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use t2opt_bench::expfmt::{check_prometheus, prom_quantile_bucket};
use t2opt_bench::{write_json, Args};
use t2opt_core::chip::PRESET_NAMES;
use t2opt_core::json::{parse_json, JsonValue};
use t2opt_serve::{AdviceService, Client, Server, ServerConfig, WORKLOAD_NAMES};
use t2opt_store::Store;
use t2opt_telemetry::metrics::Histogram;

/// Latency distribution for one response tier, in milliseconds.
#[derive(Serialize)]
struct LatencyStats {
    count: usize,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    mean_ms: f64,
}

impl LatencyStats {
    fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.total_cmp(b));
        let count = samples.len();
        let pick = |q: f64| {
            if count == 0 {
                return 0.0;
            }
            samples[((count as f64 * q) as usize).min(count - 1)]
        };
        LatencyStats {
            count,
            p50_ms: pick(0.50),
            p99_ms: pick(0.99),
            max_ms: samples.last().copied().unwrap_or(0.0),
            mean_ms: if count == 0 {
                0.0
            } else {
                samples.iter().sum::<f64>() / count as f64
            },
        }
    }
}

/// `BENCH_serve.json` envelope.
#[derive(Serialize)]
struct ServeBenchOutput {
    quick: bool,
    presets: Vec<String>,
    workloads: Vec<String>,
    clients: usize,
    total_requests: usize,
    cold: LatencyStats,
    warm: LatencyStats,
    warm_throughput_rps: f64,
    refine_settled: bool,
    settle_seconds: f64,
    client_cache_tier: usize,
    client_advisor_tier: usize,
    server_cache_tier: f64,
    server_advisor_tier: f64,
    consistent: bool,
    /// Log2 bucket of the phase-4 client-side p99 latency (µs).
    client_p99_bucket: Option<usize>,
    /// Log2 bucket of the phase-4 server's advisor-tier latency-histogram
    /// p99, recovered from the Prometheus scrape.
    server_p99_bucket: Option<usize>,
    /// Whether the two phase-4 p99 buckets agree within one log2 bucket
    /// (`false` when the phase was skipped against an external `--addr`).
    p99_bucket_consistent: bool,
}

fn metrics_field(body: &str, section: &str, field: &str) -> f64 {
    parse_json(body)
        .ok()
        .and_then(|v| v.as_object()?[section].as_object()?[field].as_f64())
        .unwrap_or(f64::NAN)
}

fn main() {
    let args = Args::from_env();
    let quick = args.has_flag("quick");
    let clients: usize = args.get("clients", 8);
    let total_requests: usize = args
        .get("requests", if quick { 1200 } else { 4000 })
        .max(1000);
    let threads: usize = args.get("threads", 8);
    let settle_deadline = Duration::from_secs(args.get("settle-timeout", 300));

    let workloads: Vec<&str> = if quick {
        vec!["triad", "mix"]
    } else {
        WORKLOAD_NAMES.to_vec()
    };
    let matrix: Vec<String> = PRESET_NAMES
        .iter()
        .flat_map(|chip| {
            workloads.iter().map(move |w| {
                format!(r#"{{"chip":"{chip}","workload":"{w}","threads":{threads}}}"#)
            })
        })
        .collect();

    // Either hammer an external daemon or bring one up in-process. The
    // worker pool is sized so every client thread keeps a dedicated
    // connection, plus one slot for this thread's metrics polling.
    let (addr, server_thread) = match args.get_str("addr") {
        Some(addr) => (addr.parse().expect("--addr must be host:port"), None),
        None => {
            let service = AdviceService::new(Store::in_memory(8), args.get("queue-cap", 64));
            if args.has_flag("no-trace") {
                service.set_tracing(false);
            }
            let server = Server::bind(
                "127.0.0.1:0",
                service,
                ServerConfig {
                    workers: clients + 1,
                    refiners: args.get("refiners", 2),
                },
            )
            .expect("failed to start in-process server");
            let addr = server.local_addr().expect("bound socket has an address");
            (addr, Some(std::thread::spawn(move || server.serve())))
        }
    };
    eprintln!(
        "serve_loadgen: {} distinct queries ({} presets x {} workloads) against {addr}, \
         {clients} clients, {total_requests} warm requests",
        matrix.len(),
        PRESET_NAMES.len(),
        workloads.len()
    );

    let mut control = Client::connect(addr).expect("failed to connect");

    // Phase 1: cold pass. Every answer must be immediate (advisor tier).
    let mut cold_samples = Vec::with_capacity(matrix.len());
    let mut cold_advisor = 0usize;
    let mut cold_cache = 0usize;
    for query in &matrix {
        let start = Instant::now();
        let (status, body) = control.post("/advise", query).expect("cold advise failed");
        cold_samples.push(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(status, 200, "cold advise rejected: {body}");
        let answer = parse_json(&body).expect("cold advise returned bad JSON");
        match answer.as_object().unwrap()["tier"].as_str() {
            Some("advisor") => cold_advisor += 1,
            Some("cache") => cold_cache += 1,
            tier => panic!("unknown tier {tier:?} in {body}"),
        }
    }
    eprintln!(
        "cold pass: {} queries, {cold_advisor} advisor tier, {cold_cache} cache tier",
        matrix.len()
    );

    // Phase 2: wait for the background refinements to land in the store.
    let settle_start = Instant::now();
    let refine_settled = loop {
        let (_, body) = control.get("/metrics").expect("metrics poll failed");
        if metrics_field(&body, "refine", "depth") == 0.0
            && matches!(
                parse_json(&body).unwrap().as_object().unwrap()["refine"]
                    .as_object()
                    .unwrap()["settled"],
                JsonValue::Bool(true)
            )
        {
            break true;
        }
        if settle_start.elapsed() > settle_deadline {
            eprintln!("WARNING: refinement did not settle within {settle_deadline:?}");
            break false;
        }
        std::thread::sleep(Duration::from_millis(200));
    };
    let settle_seconds = settle_start.elapsed().as_secs_f64();
    eprintln!("settle: refinement queue drained in {settle_seconds:.1}s");

    // Phase 3: warm pass — concurrent clients over persistent connections.
    let next = AtomicUsize::new(0);
    let cache_tier = AtomicUsize::new(0);
    let advisor_tier = AtomicUsize::new(0);
    let warm_start = Instant::now();
    let mut warm_samples: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let (matrix, next) = (&matrix, &next);
                let (cache_tier, advisor_tier) = (&cache_tier, &advisor_tier);
                scope.spawn(move || {
                    let mut client = Client::connect(addr)
                        .unwrap_or_else(|e| panic!("client {c} failed to connect: {e}"));
                    let mut samples = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total_requests {
                            return samples;
                        }
                        let query = &matrix[i % matrix.len()];
                        let start = Instant::now();
                        let (status, body) =
                            client.post("/advise", query).expect("warm advise failed");
                        samples.push(start.elapsed().as_secs_f64() * 1e3);
                        assert_eq!(status, 200, "warm advise rejected: {body}");
                        if body.contains(r#""tier":"cache""#) {
                            cache_tier.fetch_add(1, Ordering::Relaxed);
                        } else {
                            advisor_tier.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let warm_elapsed = warm_start.elapsed().as_secs_f64();
    warm_samples.truncate(total_requests);
    let warm_throughput_rps = warm_samples.len() as f64 / warm_elapsed;

    // Cross-check client-observed tiers against the server's own counters.
    let (_, body) = control.get("/metrics").expect("final metrics failed");
    let server_cache_tier = metrics_field(&body, "serve", "cache_tier");
    let server_advisor_tier = metrics_field(&body, "serve", "advisor_tier");
    let client_cache_tier = cold_cache + cache_tier.load(Ordering::Relaxed);
    let client_advisor_tier = cold_advisor + advisor_tier.load(Ordering::Relaxed);
    // Only a server we started ourselves has counters that begin at zero.
    let consistent = server_thread.is_none()
        || (server_cache_tier == client_cache_tier as f64
            && server_advisor_tier == client_advisor_tier as f64);

    // The main server's Prometheus exposition must validate regardless of
    // which phases ran.
    let (status, prom) = control
        .get_with_accept("/metrics?format=prometheus", "text/plain")
        .expect("prometheus scrape failed");
    assert_eq!(status, 200, "prometheus scrape rejected");
    check_prometheus(&prom).expect("prometheus exposition must validate");
    let warm_stats = LatencyStats::from_samples(warm_samples.clone());

    // Phase 4: p99 histogram cross-check. A dedicated single-worker server
    // with refinement disabled (no refiner threads; queued jobs just sit)
    // answers every query from the advisor tier, so its latency histogram
    // holds exactly this pass's samples and no background simulation
    // competes for CPU. The client stopwatch and the server's first-byte →
    // response-ready histogram then differ only by per-request syscall and
    // context-switch time, which the advisor tier's model evaluation
    // dominates — the two p99s must land within one log2 bucket.
    let in_process = server_thread.is_some();
    let xcheck_requests: usize = args.get("xcheck-requests", 256);
    let (client_p99_bucket, server_p99_bucket) = if in_process {
        let service = AdviceService::new(Store::in_memory(8), 1);
        if args.has_flag("no-trace") {
            service.set_tracing(false);
        }
        let server = Server::bind(
            "127.0.0.1:0",
            service,
            ServerConfig {
                workers: 1,
                refiners: 0,
            },
        )
        .expect("failed to start cross-check server");
        let xaddr = server.local_addr().expect("bound socket has an address");
        let handle = std::thread::spawn(move || server.serve());
        let mut client = Client::connect(xaddr).expect("cross-check client failed to connect");
        // Full-width queries (threads = 64, clamped per chip) maximize the
        // advisor tier's per-request model work, so shared in-server time
        // dominates the client's extra syscall/context-switch overhead.
        let xmatrix: Vec<String> = PRESET_NAMES
            .iter()
            .flat_map(|chip| {
                workloads
                    .iter()
                    .map(move |w| format!(r#"{{"chip":"{chip}","workload":"{w}","threads":64}}"#))
            })
            .collect();
        let mut samples_us = Vec::with_capacity(xcheck_requests);
        for i in 0..xcheck_requests {
            let query = &xmatrix[i % xmatrix.len()];
            let start = Instant::now();
            let (status, body) = client
                .post("/advise", query)
                .expect("cross-check advise failed");
            samples_us.push(start.elapsed().as_secs_f64() * 1e6);
            assert_eq!(status, 200, "cross-check advise rejected: {body}");
            assert!(
                body.contains(r#""tier":"advisor""#),
                "with refinement disabled every answer must stay advisor tier: {body}"
            );
        }
        let (status, xprom) = client
            .get_with_accept("/metrics?format=prometheus", "text/plain")
            .expect("cross-check scrape failed");
        assert_eq!(status, 200, "cross-check scrape rejected");
        check_prometheus(&xprom).expect("cross-check exposition must validate");
        let server_bucket = prom_quantile_bucket(&xprom, "serve_latency_advisor_tier_us", 0.99);
        samples_us.sort_by(f64::total_cmp);
        let p99_us =
            samples_us[((samples_us.len() as f64 * 0.99) as usize).min(samples_us.len() - 1)];
        let client_bucket = Some(Histogram::bucket_of(p99_us as u64));
        let (status, _) = client
            .post("/shutdown", "")
            .expect("cross-check shutdown failed");
        assert_eq!(status, 200);
        handle
            .join()
            .expect("cross-check server panicked")
            .expect("cross-check server error");
        (client_bucket, server_bucket)
    } else {
        (None, None)
    };
    let p99_bucket_consistent = matches!(
        (client_p99_bucket, server_p99_bucket),
        (Some(c), Some(s)) if c.abs_diff(s) <= 1
    );
    if in_process {
        eprintln!(
            "p99 cross-check: {xcheck_requests} advisor-tier requests, client bucket \
             {client_p99_bucket:?}, server histogram bucket {server_p99_bucket:?}, \
             consistent={p99_bucket_consistent}"
        );
    }

    if let Some(handle) = server_thread {
        let (status, _) = control.post("/shutdown", "").expect("shutdown failed");
        assert_eq!(status, 200);
        handle
            .join()
            .expect("server thread panicked")
            .expect("server error");
    }

    let out = ServeBenchOutput {
        quick,
        presets: PRESET_NAMES.iter().map(|s| s.to_string()).collect(),
        workloads: workloads.iter().map(|s| s.to_string()).collect(),
        clients,
        total_requests: matrix.len() + warm_samples.len(),
        cold: LatencyStats::from_samples(cold_samples),
        warm: warm_stats,
        warm_throughput_rps,
        refine_settled,
        settle_seconds,
        client_cache_tier,
        client_advisor_tier,
        server_cache_tier,
        server_advisor_tier,
        consistent,
        client_p99_bucket,
        server_p99_bucket,
        p99_bucket_consistent,
    };

    println!(
        "cold (advisor tier): n={} p50={:.3}ms p99={:.3}ms",
        out.cold.count, out.cold.p50_ms, out.cold.p99_ms
    );
    println!(
        "warm (cache tier):   n={} p50={:.3}ms p99={:.3}ms  ({:.0} req/s over {clients} clients)",
        out.warm.count, out.warm.p50_ms, out.warm.p99_ms, out.warm_throughput_rps
    );
    println!(
        "tiers: client cache={client_cache_tier} advisor={client_advisor_tier}, \
         server cache={server_cache_tier} advisor={server_advisor_tier}, consistent={consistent}"
    );
    assert!(consistent, "client tier counts disagree with /metrics");
    // Phase 4 only runs against a server we started ourselves.
    if in_process {
        assert!(
            p99_bucket_consistent,
            "cross-check client p99 (bucket {client_p99_bucket:?}) disagrees with the server's \
             advisor-tier histogram p99 (bucket {server_p99_bucket:?}) by more than one log2 bucket"
        );
    }

    let path = args.get_str("json").unwrap_or("BENCH_serve.json");
    write_json(path, &out).expect("failed to write JSON");
    eprintln!("wrote {path}");
}
