//! Figure 7: D3Q19 lattice-Boltzmann performance vs domain size for
//! different data layouts and scheduling methodologies, on the simulated
//! UltraSPARC T2.
//!
//! The paper compares, on cubic N³ domains (N = 64..320):
//! 64 T IJKv, 64 T IvJK, 64 T IvJK with fused (coalesced) I-J loops, and
//! 32 T IvJK fused.
//!
//! ```text
//! cargo run --release -p t2opt-bench --bin fig7_lbm               # scaled default
//! cargo run --release -p t2opt-bench --bin fig7_lbm -- --full     # paper range N ≤ 320
//! cargo run --release -p t2opt-bench --bin fig7_lbm -- --precision both
//! ```
//!
//! Expected shape: IvJK ≈ 2× IJKv and smoother; catastrophic dips where
//! N+2 ≡ 0 (mod 64) (cache thrashing, IJKv); the modulo-effect sawtooth
//! removed by coalescing; single vs double precision nearly identical
//! (FPU-bound, §2.4).

use t2opt_bench::experiments::{fig7_series, n_range, Fig7Series};
use t2opt_bench::{write_json, Args, Table};
use t2opt_kernels::lbm::LbmLayout;
use t2opt_sim::ChipConfig;

fn main() {
    let args = Args::from_env();
    let full = args.has_flag("full");
    let lo: usize = args.get("lo", 64);
    let hi: usize = args.get("hi", if full { 320 } else { 160 });
    let step: usize = args.get("step", if full { 8 } else { 16 });
    let chip = ChipConfig::ultrasparc_t2();

    let mut series = Fig7Series::paper_set();
    if matches!(args.get_str("precision"), Some("both") | Some("f32")) {
        // E8: single precision barely helps — the kernel is FPU-bound, and
        // the SPARC core's peak is identical for f32 and f64.
        series.push(Fig7Series {
            threads: 64,
            layout: LbmLayout::IvJK,
            fused: true,
            elem_size: 4,
        });
    }

    // Include the thrashing sizes N + 2 ≡ 0 (mod 64) explicitly.
    let mut ns = n_range(lo, hi, step);
    for bad in [62usize, 126, 190, 254, 318] {
        if bad >= lo && bad <= hi && !ns.contains(&bad) {
            ns.push(bad);
        }
    }
    ns.sort_unstable();

    eprintln!("fig7: D3Q19 LBM, N ∈ [{lo}, {hi}] step {step} (+ thrashing sizes)");
    let rows = fig7_series(&chip, &ns, &series);

    let mut table = Table::new(vec!["N", "series", "MLUPs/s", "L2 hit"]);
    for r in &rows {
        table.row(vec![
            r.n.to_string(),
            r.series.clone(),
            format!("{:.1}", r.mlups),
            format!("{:.2}", r.l2_hit_rate),
        ]);
    }
    table.print();

    println!();
    let mut summary = Table::new(vec!["series", "min MLUPs", "max MLUPs", "mean MLUPs"]);
    for s in &series {
        let label = s.label();
        let vals: Vec<f64> = rows
            .iter()
            .filter(|r| r.series == label)
            .map(|r| r.mlups)
            .collect();
        if vals.is_empty() {
            continue;
        }
        summary.row(vec![
            label,
            format!("{:.1}", vals.iter().copied().fold(f64::INFINITY, f64::min)),
            format!("{:.1}", vals.iter().copied().fold(0.0, f64::max)),
            format!("{:.1}", vals.iter().sum::<f64>() / vals.len() as f64),
        ]);
    }
    summary.print();

    if let Some(path) = args.get_str("json") {
        write_json(path, &rows).expect("failed to write JSON");
        eprintln!("wrote {path}");
    }
}
