//! Cross-validates the closed-form `t2opt-model` predictor against the
//! discrete-event simulator on a chip's Fig. 4 offset sweep: both rank the
//! same layout candidates, and the Spearman rank correlation between the
//! two orderings is the model's headline accuracy statistic.
//!
//! ```text
//! cargo run --release -p t2opt-bench --bin model_validate                       # T2 sweep
//! cargo run --release -p t2opt-bench --bin model_validate -- --chip budget-2mc
//! cargo run --release -p t2opt-bench --bin model_validate -- --all              # every preset
//! cargo run --release -p t2opt-bench --bin model_validate -- --check 0.9       # CI gate
//! cargo run --release -p t2opt-bench --bin model_validate -- --json BENCH_model.json
//! ```
//!
//! `--check <rho>` turns the run into a gate: the process exits non-zero
//! if any validated chip's Spearman correlation falls below the threshold
//! (or is undefined). `--all` sweeps every registered preset instead of a
//! single `--chip`; `--threads` / `--n` override the aliasing-sized
//! defaults derived from each chip's interleave period.

use serde::Serialize;
use t2opt_autotune::surrogate::{model_for_chip, surrogate_score};
use t2opt_autotune::{ParamSpace, SearchStrategy, Tuner, Workload};
use t2opt_bench::{write_json, Args, Table};
use t2opt_core::chip::{ChipSpec, PRESET_NAMES};
use t2opt_core::corr::spearman;
use t2opt_core::layout::LayoutSpec;
use t2opt_core::mapping::PagePlacement;
use t2opt_sim::ChipConfig;

/// One candidate of the sweep: the layout, what the simulator measured,
/// and what the model predicted.
#[derive(Serialize)]
struct Candidate {
    spec: LayoutSpec,
    measured_gbs: f64,
    model_gbs: f64,
    model_efficiency: f64,
}

/// Validation result for one chip preset.
#[derive(Serialize)]
struct ChipValidation {
    chip: String,
    threads: usize,
    n: usize,
    spearman: Option<f64>,
    candidates: Vec<Candidate>,
}

/// JSON envelope for the whole run.
#[derive(Serialize)]
struct ModelValidateOutput {
    threshold: Option<f64>,
    chips: Vec<ChipValidation>,
}

/// An aliasing-sized stream-mix workload for the given chip: per-thread
/// segments are a multiple of the interleave period (so the packed layout
/// fully aliases), and the default five-stream mix (3 reads + 2 writes)
/// carries more streams than any registered preset has controllers — so
/// distinct offsets produce genuinely distinct controller-coverage
/// patterns instead of one indistinguishable "fully spread" plateau,
/// which is what gives the rank correlation its resolving power.
fn aliasing_workload(spec: &ChipSpec, args: &Args) -> (Workload, usize, usize) {
    let period = spec.interleave_period();
    // 16 threads per socket: NUMA chips need the extra per-socket
    // concurrency to be capacity-bound (at 16 threads total the socket
    // split alone hides the convoy behind the latency ceiling).
    let threads = args.get("threads", spec.max_threads().min(16 * spec.n_sockets()));
    let n = args.get("n", (period / 8).max(256) * threads);
    let workload = Workload::StreamMix {
        reads: args.get("reads", 3),
        writes: args.get("writes", 2),
        n,
        threads,
        ntimes: 1,
        warmup: false,
    };
    (workload, threads, n)
}

fn validate_chip(spec: &ChipSpec, args: &Args) -> ChipValidation {
    let chip = ChipConfig::from_spec(spec);
    let (workload, threads, n) = aliasing_workload(spec, args);
    // Single-socket chips validate over the full Fig. 4 offset sweep. On a
    // NUMA chip the first-order layout axis is page *placement* — within
    // one placement the simulator's offset microstructure at
    // capacity-bound thread counts is stagger noise — so the sweep crosses
    // all three placements with the two canonical offsets (aliased, and
    // the advisor's one-controller step).
    let mut space = ParamSpace::offset_sweep_for(spec);
    if spec.n_sockets() > 1 {
        space.block_offsets = vec![0, spec.interleave_period() / spec.num_controllers()];
        space = space.with_placements(PagePlacement::ALL.to_vec());
    }

    eprintln!(
        "model_validate: {} layout sweep, {} candidates, {threads} threads, N = {n}",
        spec.name,
        space.len()
    );

    let report = Tuner::new(workload.clone(), chip.clone(), space)
        .strategy(SearchStrategy::Exhaustive)
        .run();

    let model = model_for_chip(&chip);
    let candidates: Vec<Candidate> = report
        .trials
        .iter()
        .map(|t| {
            let shape = workload.model_shape(&t.spec);
            let p = model.predict(&shape);
            Candidate {
                spec: t.spec.clone(),
                measured_gbs: t.gbs,
                model_gbs: surrogate_score(&model, &workload, &t.spec),
                model_efficiency: p.efficiency,
            }
        })
        .collect();

    let measured: Vec<f64> = candidates.iter().map(|c| c.measured_gbs).collect();
    let predicted: Vec<f64> = candidates.iter().map(|c| c.model_gbs).collect();

    ChipValidation {
        chip: spec.name.clone(),
        threads,
        n,
        spearman: spearman(&measured, &predicted),
        candidates,
    }
}

fn main() {
    let args = Args::from_env();
    let threshold: Option<f64> = args.get_str("check").map(|raw| {
        raw.parse().unwrap_or_else(|e| {
            eprintln!("error: --check {raw}: {e}");
            std::process::exit(2);
        })
    });

    let chip_names: Vec<&str> = if args.has_flag("all") {
        PRESET_NAMES.to_vec()
    } else {
        vec![args.get_str("chip").unwrap_or(PRESET_NAMES[0])]
    };

    let mut chips: Vec<ChipValidation> = Vec::new();
    for name in &chip_names {
        let Some(spec) = ChipSpec::preset(name) else {
            eprintln!(
                "unknown chip preset {name:?}; available: {}",
                PRESET_NAMES.join(", ")
            );
            std::process::exit(2);
        };
        chips.push(validate_chip(&spec, &args));
    }

    for v in &chips {
        let mut table = Table::new(vec![
            "placement",
            "block_offset",
            "sim GB/s",
            "model GB/s",
            "model eff",
        ]);
        for c in &v.candidates {
            table.row(vec![
                c.spec.placement.label().to_string(),
                c.spec.block_offset.to_string(),
                format!("{:.2}", c.measured_gbs),
                format!("{:.2}", c.model_gbs),
                format!("{:.3}", c.model_efficiency),
            ]);
        }
        println!("\n== {} ==", v.chip);
        table.print();
        match v.spearman {
            Some(rho) => println!("model-vs-sim Spearman rho = {rho:.3}"),
            None => println!("model-vs-sim Spearman rho undefined (degenerate sweep)"),
        }
    }

    if let Some(path) = args.get_str("json") {
        let out = ModelValidateOutput { threshold, chips };
        write_json(path, &out).expect("failed to write JSON");
        eprintln!("wrote {path}");
        chips = out.chips;
    }

    if let Some(min_rho) = threshold {
        let mut failed = false;
        for v in &chips {
            match v.spearman {
                Some(rho) if rho >= min_rho => {}
                Some(rho) => {
                    eprintln!(
                        "FAIL: {} Spearman {rho:.3} < threshold {min_rho:.3}",
                        v.chip
                    );
                    failed = true;
                }
                None => {
                    eprintln!("FAIL: {} Spearman undefined", v.chip);
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "\nall {} chip(s) above Spearman threshold {min_rho:.3}",
            chips.len()
        );
    }
}
