//! Ablation A1: what if the T2's controller selection were not the naive
//! bits-8:7 slice?
//!
//! Re-runs the Fig. 2 worst case (offset 0) and best case (offset 16 =
//! 128 B) under three mapping policies: the real bit-sliced interleave, an
//! XOR-folded hash (as used by later chip generations), and page-granular
//! interleave. The XOR fold destroys the congruence classes that cause the
//! aliasing, so the offset dependence should largely vanish — quantifying
//! how much of the paper's problem is the mapping itself.
//!
//! ```text
//! cargo run --release -p t2opt-bench --bin ablation_mapping
//! ```

use t2opt_bench::{write_json, Args, Table};
use t2opt_core::mapping::{AddressMap, MapPolicy};
use t2opt_kernels::stream::{run_sim, StreamConfig, StreamKernel};
use t2opt_parallel::Placement;
use t2opt_sim::ChipConfig;

fn main() {
    let args = Args::from_env();
    let n: usize = args.get("n", 1 << 21);
    let threads: usize = args.get("threads", 64);

    let policies: Vec<(&str, MapPolicy)> = vec![
        ("sliced (real T2)", MapPolicy::t2()),
        (
            "xor-fold",
            MapPolicy::XorFold {
                base: AddressMap::ultrasparc_t2(),
                folds: 10,
            },
        ),
        (
            "page 4k",
            MapPolicy::PageInterleave {
                base: AddressMap::ultrasparc_t2(),
                page: 4096,
            },
        ),
    ];

    let mut table = Table::new(vec![
        "mapping",
        "offset 0 GB/s",
        "offset 16 GB/s",
        "sensitivity",
    ]);
    #[derive(serde::Serialize)]
    struct Row {
        mapping: String,
        worst_gbs: f64,
        best_gbs: f64,
        sensitivity: f64,
    }
    let mut rows = Vec::new();
    for (name, policy) in policies {
        let mut chip = ChipConfig::ultrasparc_t2();
        chip.map = policy;
        let bw = |offset: usize| {
            let cfg = StreamConfig::fig2(n, offset, threads);
            run_sim(&cfg, StreamKernel::Triad, &chip, &Placement::t2_scatter()).reported_gbs
        };
        let worst = bw(0);
        let best = bw(16);
        table.row(vec![
            name.to_string(),
            format!("{worst:.2}"),
            format!("{best:.2}"),
            format!("{:.2}×", best / worst),
        ]);
        rows.push(Row {
            mapping: name.to_string(),
            worst_gbs: worst,
            best_gbs: best,
            sensitivity: best / worst,
        });
    }
    table.print();
    println!("\nsensitivity = best/worst; 1.0 = mapping makes offsets irrelevant");

    if let Some(path) = args.get_str("json") {
        write_json(path, &rows).expect("failed to write JSON");
        eprintln!("wrote {path}");
    }
}
