//! Ablation A2: outstanding misses per thread, and the gang drift window.
//!
//! The T2 restricts each thread to a **single outstanding cache miss**
//! (§1) — the reason "running more than a single thread per core is
//! mandatory". This ablation sweeps that limit (1, 2, 4, 8) at several
//! thread counts, and also toggles the engine's gang drift window to show
//! the idealized infinite-FIFO machine in which the aliasing largely
//! disappears (see the engine docs).
//!
//! ```text
//! cargo run --release -p t2opt-bench --bin ablation_outstanding
//! ```

use t2opt_bench::{write_json, Args, Table};
use t2opt_kernels::stream::{run_sim, StreamConfig, StreamKernel};
use t2opt_parallel::Placement;
use t2opt_sim::ChipConfig;

fn main() {
    let args = Args::from_env();
    let n: usize = args.get("n", 1 << 21);

    #[derive(serde::Serialize)]
    struct Row {
        outstanding: usize,
        threads: usize,
        gbs: f64,
    }
    let mut rows = Vec::new();

    println!("-- outstanding misses per thread (triad, good offsets) --");
    let mut table = Table::new(vec!["outstanding", "8 T", "16 T", "32 T", "64 T"]);
    for outstanding in [1usize, 2, 4, 8] {
        let mut cells = vec![outstanding.to_string()];
        for threads in [8usize, 16, 32, 64] {
            let mut chip = ChipConfig::ultrasparc_t2();
            chip.core.outstanding_misses = outstanding;
            let cfg = StreamConfig::fig2(n, 16, threads);
            let gbs =
                run_sim(&cfg, StreamKernel::Triad, &chip, &Placement::t2_scatter()).reported_gbs;
            cells.push(format!("{gbs:.2}"));
            rows.push(Row {
                outstanding,
                threads,
                gbs,
            });
        }
        table.row(cells);
    }
    table.print();
    println!(
        "\nWith 1 outstanding miss the chip needs many threads (the T2 design thesis);\n\
         more misses per thread let few threads saturate the controllers instead."
    );

    println!("\n-- gang drift window (offset sensitivity) --");
    let mut table2 = Table::new(vec![
        "gang window",
        "offset 0 GB/s",
        "offset 16 GB/s",
        "ratio",
    ]);
    for gw in [Some(4u32), Some(8), Some(16), None] {
        let mut chip = ChipConfig::ultrasparc_t2();
        chip.core.gang_window = gw;
        let bw = |offset: usize| {
            let cfg = StreamConfig::fig2(n, offset, 64);
            run_sim(&cfg, StreamKernel::Triad, &chip, &Placement::t2_scatter()).reported_gbs
        };
        let worst = bw(0);
        let best = bw(16);
        table2.row(vec![
            format!("{gw:?}"),
            format!("{worst:.2}"),
            format!("{best:.2}"),
            format!("{:.2}×", best / worst),
        ]);
    }
    table2.print();
    println!(
        "\n`None` is the idealized machine whose FIFO queues smear threads into a\n\
         conveyor covering all controllers: the aliasing of Fig. 2 all but vanishes,\n\
         showing that the measured effect requires the real chip's batched arbitration."
    );

    if let Some(path) = args.get_str("json") {
        write_json(path, &rows).expect("failed to write JSON");
        eprintln!("wrote {path}");
    }
}
