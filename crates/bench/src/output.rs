//! Output helpers for the figure binaries: aligned text tables on stdout
//! and optional JSON dumps for post-processing.

/// A simple column-aligned table writer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// JSON output (serializer + error type) now lives in
/// [`t2opt_core::json`] so that other crates (e.g. `t2opt-autotune`'s
/// result cache) can share it; re-exported here for the figure binaries.
pub use t2opt_core::json::{to_json_string, write_json, JsonErr};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["N", "GB/s"]);
        t.row(vec!["100", "12.5"]);
        t.row(vec!["100000", "3.1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].ends_with("GB/s"));
        assert!(lines[2].ends_with("12.5"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }
}
