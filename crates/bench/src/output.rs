//! Output helpers for the figure binaries: aligned text tables on stdout
//! and optional JSON dumps for post-processing.

use serde::Serialize;
use std::io::Write;

/// A simple column-aligned table writer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(
            &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Serializes `data` as pretty JSON into `path` (used by `--json <path>`).
pub fn write_json<T: Serialize>(path: &str, data: &T) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    let json = to_json_string(data);
    file.write_all(json.as_bytes())
}

/// Minimal JSON serialization via serde's data model (avoids a serde_json
/// dependency: only the types our results use — maps, seqs, strings,
/// numbers, bools — are supported).
pub fn to_json_string<T: Serialize>(data: &T) -> String {
    let mut ser = MiniJson { out: String::new() };
    data.serialize(&mut ser).expect("JSON serialization failed");
    ser.out
}

struct MiniJson {
    out: String,
}

/// Error type of the minimal JSON serializer.
#[derive(Debug)]
pub struct JsonErr(String);

impl std::fmt::Display for JsonErr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl std::error::Error for JsonErr {}
impl serde::ser::Error for JsonErr {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        JsonErr(msg.to_string())
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

macro_rules! simple_num {
    ($($fn_name:ident: $ty:ty),* $(,)?) => {
        $(fn $fn_name(self, v: $ty) -> Result<(), JsonErr> {
            self.out.push_str(&v.to_string());
            Ok(())
        })*
    };
}

impl<'a> serde::Serializer for &'a mut MiniJson {
    type Ok = ();
    type Error = JsonErr;
    type SerializeSeq = SeqSer<'a>;
    type SerializeTuple = SeqSer<'a>;
    type SerializeTupleStruct = SeqSer<'a>;
    type SerializeTupleVariant = SeqSer<'a>;
    type SerializeMap = MapSer<'a>;
    type SerializeStruct = MapSer<'a>;
    type SerializeStructVariant = MapSer<'a>;

    simple_num! {
        serialize_i8: i8, serialize_i16: i16, serialize_i32: i32, serialize_i64: i64,
        serialize_u8: u8, serialize_u16: u16, serialize_u32: u32, serialize_u64: u64,
    }

    fn serialize_bool(self, v: bool) -> Result<(), JsonErr> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<(), JsonErr> {
        self.serialize_f64(v as f64)
    }

    fn serialize_f64(self, v: f64) -> Result<(), JsonErr> {
        if v.is_finite() {
            self.out.push_str(&format!("{v}"));
        } else {
            self.out.push_str("null");
        }
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), JsonErr> {
        self.out.push_str(&escape(&v.to_string()));
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), JsonErr> {
        self.out.push_str(&escape(v));
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), JsonErr> {
        use serde::ser::SerializeSeq;
        let mut seq = self.serialize_seq(Some(v.len()))?;
        for b in v {
            seq.serialize_element(b)?;
        }
        seq.end()
    }

    fn serialize_none(self) -> Result<(), JsonErr> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), JsonErr> {
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), JsonErr> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), JsonErr> {
        self.serialize_unit()
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
    ) -> Result<(), JsonErr> {
        self.serialize_str(variant)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), JsonErr> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), JsonErr> {
        self.out.push('{');
        self.out.push_str(&escape(variant));
        self.out.push(':');
        value.serialize(&mut *self)?;
        self.out.push('}');
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<SeqSer<'a>, JsonErr> {
        self.out.push('[');
        Ok(SeqSer { ser: self, first: true })
    }

    fn serialize_tuple(self, len: usize) -> Result<SeqSer<'a>, JsonErr> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<SeqSer<'a>, JsonErr> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<SeqSer<'a>, JsonErr> {
        self.out.push('{');
        self.out.push_str(&escape(variant));
        self.out.push(':');
        self.serialize_seq(Some(len))
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<MapSer<'a>, JsonErr> {
        self.out.push('{');
        Ok(MapSer { ser: self, first: true, close_extra: false })
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<MapSer<'a>, JsonErr> {
        self.serialize_map(Some(len))
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<MapSer<'a>, JsonErr> {
        self.out.push('{');
        self.out.push_str(&escape(variant));
        self.out.push(':');
        let mut m = self.serialize_map(Some(len))?;
        m.close_extra = true;
        Ok(m)
    }
}

/// Sequence serializer.
pub struct SeqSer<'a> {
    ser: &'a mut MiniJson,
    first: bool,
}

impl SeqSer<'_> {
    fn sep(&mut self) {
        if !self.first {
            self.ser.out.push(',');
        }
        self.first = false;
    }
}

impl serde::ser::SerializeSeq for SeqSer<'_> {
    type Ok = ();
    type Error = JsonErr;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonErr> {
        self.sep();
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), JsonErr> {
        self.ser.out.push(']');
        Ok(())
    }
}

impl serde::ser::SerializeTuple for SeqSer<'_> {
    type Ok = ();
    type Error = JsonErr;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonErr> {
        serde::ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonErr> {
        serde::ser::SerializeSeq::end(self)
    }
}

impl serde::ser::SerializeTupleStruct for SeqSer<'_> {
    type Ok = ();
    type Error = JsonErr;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonErr> {
        serde::ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonErr> {
        serde::ser::SerializeSeq::end(self)
    }
}

impl serde::ser::SerializeTupleVariant for SeqSer<'_> {
    type Ok = ();
    type Error = JsonErr;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonErr> {
        serde::ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonErr> {
        self.ser.out.push_str("]}");
        Ok(())
    }
}

/// Map/struct serializer.
pub struct MapSer<'a> {
    ser: &'a mut MiniJson,
    first: bool,
    close_extra: bool,
}

impl MapSer<'_> {
    fn sep(&mut self) {
        if !self.first {
            self.ser.out.push(',');
        }
        self.first = false;
    }
}

impl serde::ser::SerializeMap for MapSer<'_> {
    type Ok = ();
    type Error = JsonErr;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), JsonErr> {
        self.sep();
        // Keys must serialize as strings; serialize into a scratch buffer
        // and quote if the result isn't already a string.
        let mut scratch = MiniJson { out: String::new() };
        key.serialize(&mut scratch)?;
        if scratch.out.starts_with('"') {
            self.ser.out.push_str(&scratch.out);
        } else {
            self.ser.out.push_str(&escape(&scratch.out));
        }
        Ok(())
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonErr> {
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), JsonErr> {
        self.ser.out.push('}');
        if self.close_extra {
            self.ser.out.push('}');
        }
        Ok(())
    }
}

impl serde::ser::SerializeStruct for MapSer<'_> {
    type Ok = ();
    type Error = JsonErr;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonErr> {
        serde::ser::SerializeMap::serialize_key(self, key)?;
        serde::ser::SerializeMap::serialize_value(self, value)
    }
    fn end(self) -> Result<(), JsonErr> {
        serde::ser::SerializeMap::end(self)
    }
}

impl serde::ser::SerializeStructVariant for MapSer<'_> {
    type Ok = ();
    type Error = JsonErr;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonErr> {
        serde::ser::SerializeStruct::serialize_field(self, key, value)
    }
    fn end(self) -> Result<(), JsonErr> {
        serde::ser::SerializeStruct::end(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Row {
        n: usize,
        gbs: f64,
        label: String,
        flag: bool,
        opt: Option<u32>,
    }

    #[test]
    fn json_round_trippable_shape() {
        let row = Row {
            n: 42,
            gbs: 12.5,
            label: "tri\"ad".into(),
            flag: true,
            opt: None,
        };
        let json = to_json_string(&row);
        assert_eq!(
            json,
            r#"{"n":42,"gbs":12.5,"label":"tri\"ad","flag":true,"opt":null}"#
        );
    }

    #[test]
    fn json_vec_of_structs() {
        #[derive(Serialize)]
        struct P {
            x: u32,
        }
        let json = to_json_string(&vec![P { x: 1 }, P { x: 2 }]);
        assert_eq!(json, r#"[{"x":1},{"x":2}]"#);
    }

    #[test]
    fn json_enum_variants() {
        #[derive(Serialize)]
        enum E {
            Unit,
            Tuple(u32, u32),
            Struct { a: u32 },
        }
        assert_eq!(to_json_string(&E::Unit), r#""Unit""#);
        assert_eq!(to_json_string(&E::Tuple(1, 2)), r#"{"Tuple":[1,2]}"#);
        assert_eq!(to_json_string(&E::Struct { a: 3 }), r#"{"Struct":{"a":3}}"#);
    }

    #[test]
    fn json_nested_map() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert("a", vec![1u32, 2]);
        m.insert("b", vec![]);
        assert_eq!(to_json_string(&m), r#"{"a":[1,2],"b":[]}"#);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["N", "GB/s"]);
        t.row(vec!["100", "12.5"]);
        t.row(vec!["100000", "3.1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].ends_with("GB/s"));
        assert!(lines[2].ends_with("12.5"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }
}
