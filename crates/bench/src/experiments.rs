//! Experiment drivers: one function per paper figure, returning the series
//! rows the figure plots. The binaries are thin wrappers around these.

use serde::Serialize;
use t2opt_kernels::jacobi::{self, JacobiConfig, JacobiLayout};
use t2opt_kernels::lbm::{self, LbmConfig, LbmLayout};
use t2opt_kernels::stream::{self, StreamConfig, StreamKernel};
use t2opt_kernels::triad::{self, TriadConfig, TriadLayout};
use t2opt_parallel::{Placement, Schedule, ThreadPool};
use t2opt_sim::ChipConfig;

/// Runs `f` over `items` on up to `available_parallelism` host threads,
/// preserving order. Each simulator run is single-threaded, so sweeps
/// parallelize embarrassingly.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len().max(1));
    let results: Vec<once_cell_mini::OnceCell<R>> = (0..items.len())
        .map(|_| once_cell_mini::OnceCell::new())
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                results[i].set(f(&items[i]));
            });
        }
    });
    results.into_iter().map(|c| c.take()).collect()
}

/// A tiny once-cell so `par_map` needs no extra dependencies.
mod once_cell_mini {
    use std::cell::UnsafeCell;
    use std::sync::atomic::{AtomicBool, Ordering};

    pub struct OnceCell<T> {
        set: AtomicBool,
        value: UnsafeCell<Option<T>>,
    }

    // SAFETY: each cell is written exactly once by exactly one thread (the
    // index partition in par_map), then read after the scope joins.
    unsafe impl<T: Send> Sync for OnceCell<T> {}
    unsafe impl<T: Send> Send for OnceCell<T> {}

    impl<T> OnceCell<T> {
        pub fn new() -> Self {
            OnceCell {
                set: AtomicBool::new(false),
                value: UnsafeCell::new(None),
            }
        }

        pub fn set(&self, v: T) {
            assert!(!self.set.swap(true, Ordering::AcqRel), "OnceCell set twice");
            // SAFETY: the swap above guarantees exclusive access.
            unsafe { *self.value.get() = Some(v) };
        }

        pub fn take(self) -> T {
            assert!(self.set.load(Ordering::Acquire), "OnceCell never set");
            self.value
                .into_inner()
                .expect("value present when flag set")
        }
    }
}

// ---------------------------------------------------------------------
// Figure 2 — STREAM bandwidth vs COMMON-block offset
// ---------------------------------------------------------------------

/// One Fig. 2 data point.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Row {
    /// COMMON-block offset in DP words (x-axis).
    pub offset: usize,
    /// Thread count (curve).
    pub threads: usize,
    /// Kernel name.
    pub kernel: String,
    /// Reported bandwidth in GB/s (y-axis).
    pub gbs: f64,
    /// Controller busy balance (diagnostic).
    pub mc_balance: f64,
}

/// Scatter placement across all of the chip's cores (identical to
/// [`Placement::t2_scatter`] for the T2 configuration).
pub fn chip_scatter(chip: &ChipConfig) -> Placement {
    Placement::Scatter {
        n_cores: chip.core.n_cores,
    }
}

/// Sweeps STREAM bandwidth vs offset for each thread count (Fig. 2).
pub fn fig2_series(
    chip: &ChipConfig,
    kernel: StreamKernel,
    n: usize,
    offsets: &[usize],
    thread_counts: &[usize],
) -> Vec<Fig2Row> {
    let mut points = Vec::new();
    for &threads in thread_counts {
        for &offset in offsets {
            points.push((offset, threads));
        }
    }
    let placement = chip_scatter(chip);
    par_map(points, |&(offset, threads)| {
        let cfg = StreamConfig::fig2(n, offset, threads);
        let res = stream::run_sim(&cfg, kernel, chip, &placement);
        Fig2Row {
            offset,
            threads,
            kernel: kernel.name().to_string(),
            gbs: res.reported_gbs,
            mc_balance: res.mc_balance,
        }
    })
}

// ---------------------------------------------------------------------
// Figure 4 — vector triad vs array length for different layouts
// ---------------------------------------------------------------------

/// One Fig. 4 data point.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Row {
    /// Array length N (x-axis).
    pub n: usize,
    /// Layout label (curve).
    pub layout: String,
    /// Bandwidth at 32 B/element in GB/s (y-axis).
    pub gbs: f64,
}

/// Sweeps vector-triad performance vs N for the Fig. 4 layout variants.
pub fn fig4_series(
    chip: &ChipConfig,
    ns: &[usize],
    layouts: &[TriadLayout],
    threads: usize,
) -> Vec<Fig4Row> {
    let mut points = Vec::new();
    for &layout in layouts {
        for &n in ns {
            points.push((n, layout));
        }
    }
    par_map(points, |&(n, layout)| {
        let cfg = TriadConfig {
            n,
            layout,
            threads,
            ntimes: 1,
        };
        let res = triad::run_sim(&cfg, chip, &Placement::t2_scatter());
        Fig4Row {
            n,
            layout: layout.label(),
            gbs: res.gbs,
        }
    })
}

// ---------------------------------------------------------------------
// Figure 5 — segmented-iterator overhead vs plain loop (host)
// ---------------------------------------------------------------------

/// One Fig. 5 data point (host measurement).
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Row {
    /// Array length N (x-axis, log scale in the paper).
    pub n: usize,
    /// Plain parallel-loop bandwidth, GB/s.
    pub plain_gbs: f64,
    /// Segmented-iterator bandwidth, GB/s.
    pub segmented_gbs: f64,
    /// Relative overhead of the segmented version in percent
    /// (positive = slower than plain).
    pub overhead_pct: f64,
}

/// Measures the segmented-iterator overhead on the host (Fig. 5): same
/// kernel through a plain pooled loop and through `SegArray` segments.
pub fn fig5_series(pool: &ThreadPool, ns: &[usize], ntimes: usize) -> Vec<Fig5Row> {
    // Host timing: run sizes sequentially (parallelism lives in the pool).
    ns.iter()
        .map(|&n| {
            let plain = triad::run_host_plain(n, pool, ntimes);
            let seg = triad::run_host_segmented(n, pool, ntimes);
            Fig5Row {
                n,
                plain_gbs: plain,
                segmented_gbs: seg,
                overhead_pct: (plain / seg - 1.0) * 100.0,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 6 — Jacobi MLUPs/s vs problem size
// ---------------------------------------------------------------------

/// One Fig. 6 data point.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Row {
    /// Grid side N (x-axis).
    pub n: usize,
    /// Thread count.
    pub threads: usize,
    /// Series label ("optimized" / "plain").
    pub variant: String,
    /// MLUPs/s (y-axis).
    pub mlups: f64,
    /// L2 hit rate (diagnostic — the static,1 story).
    pub l2_hit_rate: f64,
}

/// Sweeps the Jacobi solver vs N: optimized layout for each thread count
/// plus the plain reference at `plain_threads` (Fig. 6).
pub fn fig6_series(
    chip: &ChipConfig,
    ns: &[usize],
    thread_counts: &[usize],
    plain_threads: usize,
) -> Vec<Fig6Row> {
    let mut points: Vec<(usize, usize, bool)> = Vec::new();
    for &threads in thread_counts {
        for &n in ns {
            points.push((n, threads, false));
        }
    }
    for &n in ns {
        points.push((n, plain_threads, true));
    }
    par_map(points, |&(n, threads, plain)| {
        let cfg = if plain {
            JacobiConfig::plain(n, threads)
        } else {
            JacobiConfig::optimized(n, threads)
        };
        let res = jacobi::run_sim(&cfg, chip, &Placement::t2_scatter());
        Fig6Row {
            n,
            threads,
            variant: if plain {
                "plain".into()
            } else {
                "optimized".into()
            },
            mlups: res.mlups,
            l2_hit_rate: res.l2_hit_rate,
        }
    })
}

/// Which Jacobi layout a Fig. 6 variant uses (exposed for the ablation
/// binary).
pub fn fig6_layout(plain: bool) -> JacobiLayout {
    if plain {
        JacobiLayout::Plain
    } else {
        JacobiLayout::Optimized
    }
}

// ---------------------------------------------------------------------
// Figure 7 — LBM MLUPs/s vs domain size for layouts / fusion / threads
// ---------------------------------------------------------------------

/// One Fig. 7 data point.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Row {
    /// Domain side N (x-axis).
    pub n: usize,
    /// Series label, e.g. "64 T, IvJK, fused I-J".
    pub series: String,
    /// MLUPs/s (y-axis).
    pub mlups: f64,
    /// L2 hit rate (diagnostic — thrashing shows up here).
    pub l2_hit_rate: f64,
}

/// One Fig. 7 series descriptor.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Series {
    /// Thread count.
    pub threads: usize,
    /// Data layout.
    pub layout: LbmLayout,
    /// Fused z·y loop?
    pub fused: bool,
    /// Element size in bytes (8 = double; 4 = the §2.4 precision check).
    pub elem_size: usize,
}

impl Fig7Series {
    /// Label matching the paper's legend style.
    pub fn label(&self) -> String {
        let mut s = format!("{} T, {}", self.threads, self.layout.label());
        if self.fused {
            s.push_str(", fused I-J");
        }
        if self.elem_size == 4 {
            s.push_str(", f32");
        }
        s
    }

    /// The four series of the paper's Fig. 7.
    pub fn paper_set() -> Vec<Fig7Series> {
        vec![
            Fig7Series {
                threads: 64,
                layout: LbmLayout::IJKv,
                fused: false,
                elem_size: 8,
            },
            Fig7Series {
                threads: 64,
                layout: LbmLayout::IvJK,
                fused: false,
                elem_size: 8,
            },
            Fig7Series {
                threads: 64,
                layout: LbmLayout::IvJK,
                fused: true,
                elem_size: 8,
            },
            Fig7Series {
                threads: 32,
                layout: LbmLayout::IvJK,
                fused: true,
                elem_size: 8,
            },
        ]
    }
}

/// Sweeps LBM performance vs domain size for the given series (Fig. 7).
pub fn fig7_series(chip: &ChipConfig, ns: &[usize], series: &[Fig7Series]) -> Vec<Fig7Row> {
    let mut points = Vec::new();
    for &s in series {
        for &n in ns {
            points.push((n, s));
        }
    }
    par_map(points, |&(n, s)| {
        let cfg = LbmConfig {
            elem_size: s.elem_size,
            ..LbmConfig::new(n, s.layout, s.threads, s.fused)
        };
        let res = lbm::run_sim(&cfg, chip, &Placement::t2_scatter());
        Fig7Row {
            n,
            series: s.label(),
            mlups: res.mlups,
            l2_hit_rate: res.l2_hit_rate,
        }
    })
}

/// Convenience: the default offsets of the Fig. 2 sweep (0..=max, step).
pub fn offset_range(max: usize, step: usize) -> Vec<usize> {
    (0..=max).step_by(step.max(1)).collect()
}

/// Convenience: an inclusive integer range with a step (Fig. 4/6/7 x-axes).
pub fn n_range(lo: usize, hi: usize, step: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut n = lo;
    while n <= hi {
        v.push(n);
        n += step.max(1);
    }
    v
}

/// A Jacobi schedule by name (for the schedule ablation binary).
pub fn schedule_by_name(name: &str) -> Option<Schedule> {
    match name {
        "static" => Some(Schedule::Static),
        "static1" | "static,1" => Some(Schedule::StaticChunk(1)),
        "dynamic" => Some(Schedule::Dynamic(1)),
        "guided" => Some(Schedule::Guided(1)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..100).collect::<Vec<usize>>(), |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn ranges() {
        assert_eq!(offset_range(8, 4), vec![0, 4, 8]);
        assert_eq!(n_range(10, 16, 3), vec![10, 13, 16]);
    }

    #[test]
    fn schedule_names() {
        assert_eq!(schedule_by_name("static"), Some(Schedule::Static));
        assert_eq!(schedule_by_name("static,1"), Some(Schedule::StaticChunk(1)));
        assert!(schedule_by_name("bogus").is_none());
    }

    #[test]
    fn fig7_labels() {
        let s = Fig7Series {
            threads: 64,
            layout: LbmLayout::IvJK,
            fused: true,
            elem_size: 8,
        };
        assert_eq!(s.label(), "64 T, IvJK, fused I-J");
    }

    #[test]
    fn tiny_fig2_sweep_runs() {
        let chip = ChipConfig::ultrasparc_t2();
        let rows = fig2_series(&chip, StreamKernel::Triad, 1 << 14, &[0, 16], &[8]);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.gbs > 0.0));
    }
}
