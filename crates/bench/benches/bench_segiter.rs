//! Criterion micro-benchmarks for the segmented-iterator machinery — the
//! host-side counterpart of Fig. 5: the hierarchical (segment-wise) loop
//! must match a plain slice loop, while the element-wise flat iterator
//! shows the `operator++` branch cost the paper warns about.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use t2opt_core::iter::{seg_zip4, HierExt};
use t2opt_core::layout::LayoutSpec;
use t2opt_core::seg_array::SegArray;

fn make(n: usize, segs: usize) -> SegArray<f64> {
    let mut a = SegArray::<f64>::builder(n)
        .segments(segs)
        .spec(LayoutSpec::t2_rotating())
        .build();
    a.fill_with(|i| i as f64);
    a
}

fn bench_triad_styles(c: &mut Criterion) {
    let mut group = c.benchmark_group("triad_kernel_style");
    for &n in &[10_000usize, 400_000] {
        group.throughput(Throughput::Bytes(n as u64 * 32));
        // Plain contiguous slices — the baseline the paper compares against.
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let cc: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        let d: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
        let mut a = vec![0.0f64; n];
        group.bench_with_input(BenchmarkId::new("plain_slices", n), &n, |bench, _| {
            bench.iter(|| {
                for i in 0..n {
                    a[i] = b[i] + cc[i] * d[i];
                }
                black_box(a[n - 1])
            })
        });

        // Hierarchical segmented loop (8 segments).
        let sb = make(n, 8);
        let sc = make(n, 8);
        let sd = make(n, 8);
        let mut sa = SegArray::<f64>::builder(n)
            .segments(8)
            .spec(LayoutSpec::t2_rotating())
            .build();
        group.bench_with_input(BenchmarkId::new("segmented_hier", n), &n, |bench, _| {
            bench.iter(|| {
                seg_zip4(&mut sa, &sb, &sc, &sd, |a, b, c, d| {
                    for i in 0..a.len() {
                        a[i] = b[i] + c[i] * d[i];
                    }
                });
                black_box(sa.segment(7)[0])
            })
        });
    }
    group.finish();
}

fn bench_iteration_styles(c: &mut Criterion) {
    let mut group = c.benchmark_group("iteration_style");
    let n = 400_000;
    let arr = make(n, 8);
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function("hier_fold_sum", |bench| {
        bench.iter(|| black_box(arr.hier_fold(0.0f64, |acc, x| acc + x)))
    });

    // The branchy element-wise iterator the paper discourages.
    group.bench_function("flat_iter_sum", |bench| {
        bench.iter(|| black_box(arr.flat_iter().sum::<f64>()))
    });

    // Reference: plain Vec sum.
    let v: Vec<f64> = (0..n).map(|i| i as f64).collect();
    group.bench_function("vec_sum", |bench| {
        bench.iter(|| black_box(v.iter().sum::<f64>()))
    });
    group.finish();
}

fn bench_build_and_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("seg_array_build");
    group.bench_function("build_1M_8seg_rotating", |bench| {
        bench.iter(|| {
            black_box(
                SegArray::<f64>::builder(1 << 20)
                    .segments(8)
                    .spec(LayoutSpec::t2_rotating())
                    .build()
                    .base_addr(),
            )
        })
    });
    group.bench_function("plan_2000_rows", |bench| {
        let spec = LayoutSpec::new().base_align(8192).seg_align(512).shift(128);
        bench.iter(|| {
            black_box(
                spec.plan(
                    2000 * 2000,
                    8,
                    &t2opt_core::layout::SegmentPlan::Sizes(vec![2000; 2000]),
                )
                .total_bytes,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_triad_styles,
    bench_iteration_styles,
    bench_build_and_layout
);
criterion_main!(benches);
