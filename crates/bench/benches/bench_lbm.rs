//! Criterion benchmarks for the D3Q19 LBM: Fig. 7 data points on the
//! simulated T2 (IJKv vs IvJK, fused vs not) and the host solver's
//! site-update rate for both layouts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use t2opt_kernels::lbm::{run_sim, LbmConfig, LbmHost, LbmLayout};
use t2opt_parallel::{Placement, Schedule, ThreadPool};
use t2opt_sim::ChipConfig;

fn bench_sim_points(c: &mut Criterion) {
    let chip = ChipConfig::ultrasparc_t2();
    let mut group = c.benchmark_group("fig7_sim_points");
    group.sample_size(10);
    let n = 48;
    for (label, layout, fused) in [
        ("IJKv_64T", LbmLayout::IJKv, false),
        ("IvJK_64T", LbmLayout::IvJK, false),
        ("IvJK_fused_64T", LbmLayout::IvJK, true),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let cfg = LbmConfig::new(n, layout, 64, fused);
                black_box(run_sim(&cfg, &chip, &Placement::t2_scatter()).mlups)
            })
        });
    }
    group.finish();
}

fn bench_host_step(c: &mut Criterion) {
    let pool = ThreadPool::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    );
    let mut group = c.benchmark_group("host_lbm_step");
    group.sample_size(10);
    for layout in [LbmLayout::IJKv, LbmLayout::IvJK] {
        let mut lbm = LbmHost::new(32, layout, 1.2);
        lbm.cavity(0.05);
        group.bench_function(layout.label(), |b| {
            b.iter(|| {
                lbm.step(&pool, Schedule::Static, true);
                black_box(lbm.get_f(1, 1, 1, 0))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim_points, bench_host_step);
criterion_main!(benches);
