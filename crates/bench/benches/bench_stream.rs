//! Criterion benchmarks regenerating the Fig. 2 data points on the
//! simulated T2: STREAM triad/copy at the characteristic offsets (worst,
//! half-recovered, best), plus the host STREAM for reference.
//!
//! These run small problem instances so `cargo bench` stays fast; the
//! `fig2_stream` binary produces the full sweep.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use t2opt_kernels::stream::{run_host, run_sim, StreamConfig, StreamKernel};
use t2opt_parallel::{Placement, ThreadPool};
use t2opt_sim::ChipConfig;

fn bench_sim_offsets(c: &mut Criterion) {
    let chip = ChipConfig::ultrasparc_t2();
    let mut group = c.benchmark_group("fig2_sim_points");
    group.sample_size(10);
    for &(label, offset) in &[
        ("offset0_worst", 0usize),
        ("offset32_half", 32),
        ("offset16_best", 16),
    ] {
        group.bench_with_input(BenchmarkId::new("triad_64T", label), &offset, |b, &off| {
            b.iter(|| {
                let cfg = StreamConfig::fig2(1 << 15, off, 64);
                black_box(
                    run_sim(&cfg, StreamKernel::Triad, &chip, &Placement::t2_scatter())
                        .reported_gbs,
                )
            })
        });
    }
    group.finish();
}

fn bench_host_stream(c: &mut Criterion) {
    let pool = ThreadPool::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    );
    let mut group = c.benchmark_group("host_stream");
    group.sample_size(10);
    for kernel in [StreamKernel::Copy, StreamKernel::Triad] {
        group.bench_function(kernel.name(), |b| {
            b.iter(|| {
                let cfg = StreamConfig {
                    n: 1 << 20,
                    offset: 0,
                    threads: 0,
                    ntimes: 1,
                };
                black_box(run_host(&cfg, kernel, &pool))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim_offsets, bench_host_stream);
criterion_main!(benches);
