//! Criterion benchmarks of the simulator engine itself: event throughput
//! (memory ops simulated per second) for hit-dominated, miss-dominated and
//! contended workloads — the cost model of every figure sweep.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use t2opt_sim::prelude::*;

fn hit_workload(n_threads: usize, ops: usize) -> Vec<ThreadSpec> {
    // All threads loop over one shared 64 KiB region: pure L2 hits after
    // the first pass.
    (0..n_threads)
        .map(|t| {
            let per = ops / n_threads;
            let program =
                Box::new((0..per).map(move |i| Op::Read((i as u64 % 1024) * 64))) as Program;
            ThreadSpec::new(t % 8, program)
        })
        .collect()
}

fn miss_workload(n_threads: usize, ops: usize) -> Vec<ThreadSpec> {
    (0..n_threads)
        .map(|t| {
            let per = ops / n_threads;
            let base = t as u64 * (1 << 26);
            let program = Box::new(
                (0..per).map(move |i| Op::Read(base + i as u64 * 64 + 128 * (t as u64 % 4))),
            ) as Program;
            ThreadSpec::new(t % 8, program)
        })
        .collect()
}

fn contended_workload(n_threads: usize, ops: usize) -> Vec<ThreadSpec> {
    // Everything congruent: worst-case queue churn.
    (0..n_threads)
        .map(|t| {
            let per = ops / n_threads;
            let base = t as u64 * (1 << 26);
            let program =
                Box::new((0..per).map(move |i| Op::Read(base + i as u64 * 512))) as Program;
            ThreadSpec::new(t % 8, program)
        })
        .collect()
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine_throughput");
    group.sample_size(10);
    let ops = 64 * 1024;
    group.throughput(Throughput::Elements(ops as u64));
    group.bench_function("l2_hits_64T", |b| {
        b.iter(|| {
            let sim = Simulation::t2();
            black_box(sim.run(hit_workload(64, ops)).l2_hits)
        })
    });
    group.bench_function("misses_spread_64T", |b| {
        b.iter(|| {
            let sim = Simulation::t2();
            black_box(sim.run(miss_workload(64, ops)).l2_misses)
        })
    });
    group.bench_function("misses_contended_64T", |b| {
        b.iter(|| {
            let sim = Simulation::t2();
            black_box(sim.run(contended_workload(64, ops)).cycles())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
