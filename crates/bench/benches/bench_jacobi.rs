//! Criterion benchmarks for the Jacobi solver: Fig. 6 data points on the
//! simulated T2 (optimized vs plain, static vs static,1) and the host
//! solver's sweep rate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use t2opt_kernels::jacobi::{run_sim, JacobiConfig, JacobiHost, JacobiLayout};
use t2opt_parallel::{Placement, Schedule, ThreadPool};
use t2opt_sim::ChipConfig;

fn bench_sim_points(c: &mut Criterion) {
    let chip = ChipConfig::ultrasparc_t2();
    let mut group = c.benchmark_group("fig6_sim_points");
    group.sample_size(10);
    let n = 256;
    group.bench_function("optimized_64T", |b| {
        b.iter(|| {
            black_box(
                run_sim(
                    &JacobiConfig::optimized(n, 64),
                    &chip,
                    &Placement::t2_scatter(),
                )
                .mlups,
            )
        })
    });
    group.bench_function("plain_64T", |b| {
        b.iter(|| {
            black_box(run_sim(&JacobiConfig::plain(n, 64), &chip, &Placement::t2_scatter()).mlups)
        })
    });
    group.bench_function("optimized_static_not_static1", |b| {
        b.iter(|| {
            let cfg = JacobiConfig {
                n,
                threads: 64,
                schedule: Schedule::Static,
                layout: JacobiLayout::Optimized,
                sweeps: 2,
            };
            black_box(run_sim(&cfg, &chip, &Placement::t2_scatter()).mlups)
        })
    });
    group.finish();
}

fn bench_host_solver(c: &mut Criterion) {
    let pool = ThreadPool::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    );
    let mut group = c.benchmark_group("host_jacobi");
    group.sample_size(10);
    let n = 257;
    let mut solver = JacobiHost::new(n, |i, _| if i == 0 { 1.0 } else { 0.0 });
    group.bench_function("sweep_513_static1", |b| {
        b.iter(|| {
            solver.run(1, &pool, Schedule::StaticChunk(1));
            black_box(solver.get(1, 1))
        })
    });
    group.bench_function("sweep_513_static", |b| {
        b.iter(|| {
            solver.run(1, &pool, Schedule::Static);
            black_box(solver.get(1, 1))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sim_points, bench_host_solver);
criterion_main!(benches);
