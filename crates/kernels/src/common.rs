//! Shared helpers for kernel trace construction.

use t2opt_parallel::Placement;
use t2opt_sim::trace::Program;
use t2opt_sim::ThreadSpec;

/// A bump allocator for the *virtual* address space handed to the
/// simulator. The paper notes that with ≥ 4 kB pages the distinction
/// between physical and virtual addresses "is of no importance" for the
/// controller mapping (§1), so kernels simply lay their arrays out in a
/// synthetic address space with byte-exact control.
#[derive(Debug, Clone)]
pub struct VirtualAlloc {
    cursor: u64,
}

impl VirtualAlloc {
    /// A fresh address space. Allocation starts away from address 0 so that
    /// "previous allocation" artifacts (malloc headers etc.) can be
    /// emulated explicitly.
    pub fn new() -> Self {
        VirtualAlloc {
            cursor: 0x1000_0000,
        }
    }

    /// Allocates `bytes` aligned to `align` (power of two), then displaced
    /// by `offset` bytes. Returns the (displaced) base address.
    pub fn alloc(&mut self, bytes: u64, align: u64, offset: u64) -> u64 {
        assert!(align.is_power_of_two());
        let aligned = (self.cursor + align - 1) & !(align - 1);
        let base = aligned + offset;
        self.cursor = base + bytes;
        base
    }

    /// Emulates a plain `malloc`: 16-byte alignment with a 16-byte header
    /// preceding the usable region, arrays packed back to back — the
    /// "plain" configuration of Fig. 4 whose base addresses are whatever
    /// they happen to be.
    pub fn malloc(&mut self, bytes: u64) -> u64 {
        self.alloc(bytes + 16, 16, 16)
    }

    /// Current cursor (useful to leave deliberate gaps).
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Moves the cursor forward by `bytes` (a guard gap).
    pub fn gap(&mut self, bytes: u64) {
        self.cursor += bytes;
    }
}

impl Default for VirtualAlloc {
    fn default() -> Self {
        VirtualAlloc::new()
    }
}

/// Wraps per-thread programs into [`ThreadSpec`]s according to a placement
/// policy over `n_cores` simulated cores.
pub fn place_threads(
    programs: Vec<Program>,
    placement: &Placement,
    n_cores: usize,
) -> Vec<ThreadSpec> {
    programs
        .into_iter()
        .enumerate()
        .map(|(tid, program)| {
            let core = placement.core_of(tid).unwrap_or(tid % n_cores) % n_cores;
            ThreadSpec::new(core, program)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment_and_offset() {
        let mut va = VirtualAlloc::new();
        let a = va.alloc(1000, 8192, 0);
        assert_eq!(a % 8192, 0);
        let b = va.alloc(1000, 8192, 128);
        assert_eq!(b % 8192, 128);
        assert!(b > a + 1000);
    }

    #[test]
    fn malloc_is_16_byte_aligned_off_16() {
        let mut va = VirtualAlloc::new();
        let a = va.malloc(100);
        assert_eq!(a % 16, 0);
        let b = va.malloc(100);
        // Packed: b starts right after a's 100 bytes + next header.
        assert!(b >= a + 100 + 16);
        assert!(b <= a + 100 + 48);
    }

    #[test]
    fn place_threads_scatter() {
        use t2opt_sim::trace::Op;
        let programs: Vec<Program> = (0..16)
            .map(|_| Box::new(std::iter::once(Op::Delay(1))) as Program)
            .collect();
        let specs = place_threads(programs, &Placement::Scatter { n_cores: 8 }, 8);
        assert_eq!(specs[0].core, 0);
        assert_eq!(specs[7].core, 7);
        assert_eq!(specs[8].core, 0);
    }
}
