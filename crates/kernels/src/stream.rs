//! The McCalpin STREAM benchmark (§2.1) — host execution and T2-simulator
//! traces.
//!
//! STREAM measures sustainable memory bandwidth with four OpenMP-parallel
//! vector operations over arrays far larger than any cache:
//!
//! * copy:  `C(:) = A(:)`
//! * scale: `B(:) = s·C(:)`
//! * add:   `C(:) = A(:) + B(:)`
//! * triad: `A(:) = B(:) + s·C(:)`
//!
//! The Fortran reference puts A, B, C in a COMMON block with a configurable
//! *offset*: `a(ndim), b(ndim), c(ndim)` with `ndim = N + offset`, so the
//! base-address separation between consecutive arrays is `(N + offset)·8`
//! bytes. With `N` a power of two, that separation mod 512 B is just
//! `offset·8` — which is how Fig. 2 turns the offset dial into a memory-
//! controller aliasing dial.
//!
//! Reported bandwidth follows the STREAM convention: write-allocate RFO
//! traffic is *not* counted, so e.g. triad's actual DRAM traffic is 4/3 of
//! the reported figure.

use crate::common::{place_threads, VirtualAlloc};
use serde::{Deserialize, Serialize};
use t2opt_parallel::{chunk_assignment, Placement, Schedule, ThreadPool};
use t2opt_sim::telemetry::timeline::{StreamLabel, Timeline, TraceConfig};
use t2opt_sim::trace::{chain_with_barriers, Program, StreamLoop, StreamSpec};
use t2opt_sim::{ChipConfig, SimStats, Simulation};

/// Which STREAM kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamKernel {
    /// `C(:) = A(:)`
    Copy,
    /// `B(:) = s·C(:)`
    Scale,
    /// `C(:) = A(:) + B(:)`
    Add,
    /// `A(:) = B(:) + s·C(:)`
    Triad,
}

impl StreamKernel {
    /// Name as printed by the STREAM benchmark.
    pub fn name(&self) -> &'static str {
        match self {
            StreamKernel::Copy => "copy",
            StreamKernel::Scale => "scale",
            StreamKernel::Add => "add",
            StreamKernel::Triad => "triad",
        }
    }

    /// Floating-point operations per element.
    pub fn flops_per_elem(&self) -> f64 {
        match self {
            StreamKernel::Copy => 0.0,
            StreamKernel::Scale | StreamKernel::Add => 1.0,
            StreamKernel::Triad => 2.0,
        }
    }

    /// Bytes counted per element by the STREAM reporting convention
    /// (one word per participating array; RFO not counted).
    pub fn reported_bytes_per_elem(&self) -> u64 {
        match self {
            StreamKernel::Copy | StreamKernel::Scale => 16,
            StreamKernel::Add | StreamKernel::Triad => 24,
        }
    }

    /// The load/store stream pattern given the three array bases, in
    /// program order (loads first).
    fn streams(&self, a: u64, b: u64, c: u64) -> Vec<StreamSpec> {
        match self {
            StreamKernel::Copy => vec![StreamSpec::load(a), StreamSpec::store(c)],
            StreamKernel::Scale => vec![StreamSpec::load(c), StreamSpec::store(b)],
            StreamKernel::Add => {
                vec![
                    StreamSpec::load(a),
                    StreamSpec::load(b),
                    StreamSpec::store(c),
                ]
            }
            StreamKernel::Triad => {
                vec![
                    StreamSpec::load(b),
                    StreamSpec::load(c),
                    StreamSpec::store(a),
                ]
            }
        }
    }
}

/// Configuration of a STREAM experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Array length N in double-precision words (paper: 2²⁵ for Fig. 2).
    pub n: usize,
    /// COMMON-block offset in DP words (the Fig. 2 x-axis).
    pub offset: usize,
    /// Number of OpenMP threads.
    pub threads: usize,
    /// Measured sweeps (the paper uses ntimes = 10; shape needs ≥ 2).
    pub ntimes: usize,
}

impl StreamConfig {
    /// The Fig. 2 setup at a given offset and thread count, with a reduced
    /// default N (the periodicity only needs N ≫ cache and N·8 ≡ 0 mod 512;
    /// use `n = 1 << 25` to match the paper exactly).
    pub fn fig2(n: usize, offset: usize, threads: usize) -> Self {
        StreamConfig {
            n,
            offset,
            threads,
            ntimes: 2,
        }
    }

    /// Total bytes the benchmark reports moving per measured sweep.
    pub fn reported_bytes_per_sweep(&self, kernel: StreamKernel) -> u64 {
        self.n as u64 * kernel.reported_bytes_per_elem()
    }
}

/// Base addresses of the three COMMON-block arrays under `cfg`: one
/// contiguous page-aligned region (Fortran storage sequence), each array
/// `ndim = N + offset` words long.
pub fn common_block_bases(cfg: &StreamConfig) -> (u64, u64, u64) {
    let ndim = (cfg.n + cfg.offset) as u64 * 8;
    let mut va = VirtualAlloc::new();
    let a = va.alloc(3 * ndim, 8192, 0);
    (a, a + ndim, a + 2 * ndim)
}

/// Builds the per-thread simulator programs for one STREAM run: a warm-up
/// sweep, a barrier (id 0, where the measurement window opens), then
/// `ntimes` measured sweeps separated by barriers.
pub fn build_trace(cfg: &StreamConfig, kernel: StreamKernel, chip: &ChipConfig) -> Vec<Program> {
    let (a, b, c) = common_block_bases(cfg);
    let line = chip.l2.line;

    let assignment = chunk_assignment(Schedule::Static, cfg.n, cfg.threads);
    (0..cfg.threads)
        .map(|tid| {
            let chunks = assignment[tid].clone();
            let kernel_streams = kernel.streams(a, b, c);
            let flops = kernel.flops_per_elem();
            let mut sweeps = Vec::new();
            for _ in 0..=cfg.ntimes {
                // One sweep = this thread's chunks in order.
                let mut per_chunk: Vec<StreamLoop> = Vec::new();
                for ch in &chunks {
                    let bases: Vec<StreamSpec> = kernel_streams
                        .iter()
                        .map(|s| StreamSpec {
                            base: s.base + ch.start as u64 * 8,
                            dir: s.dir,
                        })
                        .collect();
                    per_chunk.push(StreamLoop::new(bases, ch.len(), 8, flops, line));
                }
                sweeps.push(per_chunk.into_iter().flatten());
            }
            chain_with_barriers(sweeps, 0)
        })
        .collect()
}

/// Result of a simulated STREAM run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamResult {
    /// Reported bandwidth (STREAM convention, RFO not counted), GB/s.
    pub reported_gbs: f64,
    /// Actual DRAM bandwidth including RFO and write-backs, GB/s.
    pub actual_gbs: f64,
    /// Controller busy-cycle balance (1.0 = even).
    pub mc_balance: f64,
    /// Raw statistics.
    pub stats: SimStats,
}

/// Runs one STREAM configuration on the T2 simulator.
pub fn run_sim(
    cfg: &StreamConfig,
    kernel: StreamKernel,
    chip: &ChipConfig,
    placement: &Placement,
) -> StreamResult {
    let programs = build_trace(cfg, kernel, chip);
    let threads = place_threads(programs, placement, chip.core.n_cores);
    let sim = Simulation::new(chip.clone()).measure_after_barrier(0);
    let stats = sim.run(threads);
    let reported = cfg.reported_bytes_per_sweep(kernel) * cfg.ntimes as u64;
    StreamResult {
        reported_gbs: stats.reported_bandwidth_gbs(chip, reported),
        actual_gbs: stats.actual_bandwidth_gbs(chip),
        mc_balance: stats.mc_balance(),
        stats,
    }
}

/// Like [`run_sim`] but with time-resolved tracing: also returns a
/// [`Timeline`] sampled every `interval` cycles, its stream labels set to
/// the kernel's three arrays (A/B/C) so
/// [`t2opt_sim::telemetry::alias::AliasReport`] can name aliased streams.
pub fn run_sim_traced(
    cfg: &StreamConfig,
    kernel: StreamKernel,
    chip: &ChipConfig,
    placement: &Placement,
    interval: u64,
) -> (StreamResult, Timeline) {
    let programs = build_trace(cfg, kernel, chip);
    let threads = place_threads(programs, placement, chip.core.n_cores);
    let sim = Simulation::new(chip.clone()).measure_after_barrier(0);
    let (a, b, c) = common_block_bases(cfg);
    let trace = TraceConfig::with_interval(interval).streams(vec![
        StreamLabel::new("A", a),
        StreamLabel::new("B", b),
        StreamLabel::new("C", c),
    ]);
    let (stats, timeline) = sim.run_traced(threads, &trace);
    let reported = cfg.reported_bytes_per_sweep(kernel) * cfg.ntimes as u64;
    let result = StreamResult {
        reported_gbs: stats.reported_bandwidth_gbs(chip, reported),
        actual_gbs: stats.actual_bandwidth_gbs(chip),
        mc_balance: stats.mc_balance(),
        stats,
    };
    (result, timeline)
}

/// Host-side STREAM (plain slices + thread pool), returning the reported
/// bandwidth in GB/s. Used for API demonstrations and correctness tests —
/// host hardware does not exhibit the T2 aliasing.
pub fn run_host(cfg: &StreamConfig, kernel: StreamKernel, pool: &ThreadPool) -> f64 {
    let ndim = cfg.n + cfg.offset;
    let mut a = vec![1.0f64; ndim];
    let mut b = vec![2.0f64; ndim];
    let mut c = vec![0.0f64; ndim];
    let scalar = 3.0f64;
    let n = cfg.n;

    let mut best = f64::INFINITY;
    for _ in 0..=cfg.ntimes {
        let t0 = std::time::Instant::now();
        match kernel {
            StreamKernel::Copy => {
                let (src, dst) = (&a, &mut c);
                host_sweep2(pool, n, src, dst, |x| x);
            }
            StreamKernel::Scale => {
                let (src, dst) = (&c, &mut b);
                host_sweep2(pool, n, src, dst, move |x| scalar * x);
            }
            StreamKernel::Add => {
                let (s1, s2, dst) = (&a, &b, &mut c);
                host_sweep3(pool, n, s1, s2, dst, |x, y| x + y);
            }
            StreamKernel::Triad => {
                let (s1, s2, dst) = (&b, &c, &mut a);
                host_sweep3(pool, n, s1, s2, dst, move |x, y| x + scalar * y);
            }
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    cfg.reported_bytes_per_sweep(kernel) as f64 / best / 1e9
}

fn host_sweep2(
    pool: &ThreadPool,
    n: usize,
    src: &[f64],
    dst: &mut [f64],
    f: impl Fn(f64) -> f64 + Sync,
) {
    let dst_ptr = SendPtr(dst.as_mut_ptr());
    pool.parallel_for(0..n, Schedule::Static, |_tid, range| {
        // SAFETY: chunks are disjoint across threads (exact cover), so each
        // dst element is written by exactly one thread.
        let dst = unsafe { std::slice::from_raw_parts_mut(dst_ptr.get(), n) };
        for i in range {
            dst[i] = f(src[i]);
        }
    });
}

fn host_sweep3(
    pool: &ThreadPool,
    n: usize,
    s1: &[f64],
    s2: &[f64],
    dst: &mut [f64],
    f: impl Fn(f64, f64) -> f64 + Sync,
) {
    let dst_ptr = SendPtr(dst.as_mut_ptr());
    pool.parallel_for(0..n, Schedule::Static, |_tid, range| {
        // SAFETY: chunks are disjoint across threads (exact cover).
        let dst = unsafe { std::slice::from_raw_parts_mut(dst_ptr.get(), n) };
        for i in range {
            dst[i] = f(s1[i], s2[i]);
        }
    });
}

#[derive(Clone, Copy)]
struct SendPtr(*mut f64);

impl SendPtr {
    /// Accessor so closures capture the (Send + Sync) wrapper, not the raw
    /// pointer field (edition-2021 disjoint captures).
    fn get(&self) -> *mut f64 {
        self.0
    }
}
// SAFETY: the pointer is only used inside `parallel_for` on disjoint index
// ranges while the caller holds the unique borrow.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_chip() -> ChipConfig {
        ChipConfig::ultrasparc_t2()
    }

    #[test]
    fn trace_touches_expected_volume() {
        let chip = small_chip();
        let cfg = StreamConfig {
            n: 1 << 12,
            offset: 0,
            threads: 8,
            ntimes: 1,
        };
        let res = run_sim(&cfg, StreamKernel::Triad, &chip, &Placement::t2_scatter());
        // Warm-up + 1 measured sweep; measured window sees one sweep of
        // demand reads: arrays ≫ L2 is not true here, but with offset 0 and
        // 3 arrays × 32 KiB = 96 KiB it all fits — so the measured sweep can
        // hit. Just sanity-check the plumbing produced *some* traffic and a
        // positive bandwidth.
        assert!(res.reported_gbs > 0.0);
        assert!(res.stats.mem_ops > 0);
    }

    #[test]
    fn triad_beats_copy_on_t2() {
        // §2.1: copy suffers more from bidirectional transfer overhead
        // (1 write per read vs 1 write per 2 reads).
        let chip = small_chip();
        // Arrays must dwarf the 4 MB L2 (3 arrays × 8 MiB here).
        let cfg = StreamConfig {
            n: 1 << 20,
            offset: 37,
            threads: 64,
            ntimes: 1,
        };
        let copy = run_sim(&cfg, StreamKernel::Copy, &chip, &Placement::t2_scatter());
        let triad = run_sim(&cfg, StreamKernel::Triad, &chip, &Placement::t2_scatter());
        assert!(
            triad.reported_gbs > copy.reported_gbs,
            "triad {:.1} should beat copy {:.1}",
            triad.reported_gbs,
            copy.reported_gbs
        );
    }

    #[test]
    fn offset_zero_is_a_deep_minimum() {
        // The Fig. 2 signature: offset 0 ≪ offset 16 (= optimal 128 B), and
        // offset 64 (≡ 0 mod 512 B) is as bad as offset 0.
        let chip = small_chip();
        let n = 1 << 20;
        let bw = |off| {
            run_sim(
                &StreamConfig {
                    n,
                    offset: off,
                    threads: 64,
                    ntimes: 1,
                },
                StreamKernel::Triad,
                &chip,
                &Placement::t2_scatter(),
            )
            .reported_gbs
        };
        let at0 = bw(0);
        let at16 = bw(16);
        let at64 = bw(64);
        assert!(at16 > 1.4 * at0, "offset 16 {at16:.1} vs offset 0 {at0:.1}");
        assert!(
            (at64 - at0).abs() / at0 < 0.25,
            "offset 64 {at64:.1} must be ≈ offset 0 {at0:.1}"
        );
    }

    #[test]
    fn traced_run_reports_identical_stats() {
        let chip = small_chip();
        let cfg = StreamConfig {
            n: 1 << 14,
            offset: 0,
            threads: 16,
            ntimes: 1,
        };
        let plain = run_sim(&cfg, StreamKernel::Triad, &chip, &Placement::t2_scatter());
        let (traced, timeline) = run_sim_traced(
            &cfg,
            StreamKernel::Triad,
            &chip,
            &Placement::t2_scatter(),
            2048,
        );
        assert_eq!(
            plain.stats, traced.stats,
            "tracing must not perturb the simulation"
        );
        assert_eq!(timeline.interval, 2048);
        assert_eq!(timeline.streams.len(), 3);
        assert!(!timeline.windows.is_empty());
        // All three COMMON-block arrays are congruent mod 512 at offset 0.
        let (a, b, c) = common_block_bases(&cfg);
        assert_eq!(a % 512, b % 512);
        assert_eq!(b % 512, c % 512);
    }

    #[test]
    fn host_stream_produces_correct_values() {
        let pool = ThreadPool::new(4);
        let cfg = StreamConfig {
            n: 10_000,
            offset: 0,
            threads: 4,
            ntimes: 1,
        };
        // Just verify all four kernels run; value checks below.
        for k in [
            StreamKernel::Copy,
            StreamKernel::Scale,
            StreamKernel::Add,
            StreamKernel::Triad,
        ] {
            let gbs = run_host(&cfg, k, &pool);
            assert!(gbs > 0.0, "{} produced non-positive bandwidth", k.name());
        }
    }

    #[test]
    fn host_sweeps_compute_correctly() {
        let pool = ThreadPool::new(3);
        let src: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let mut dst = vec![0.0; 1000];
        host_sweep2(&pool, 1000, &src, &mut dst, |x| 2.0 * x);
        assert!(dst.iter().enumerate().all(|(i, &v)| v == 2.0 * i as f64));
        let s2: Vec<f64> = (0..1000).map(|i| (1000 - i) as f64).collect();
        let mut dst3 = vec![0.0; 1000];
        host_sweep3(&pool, 1000, &src, &s2, &mut dst3, |x, y| x + y);
        assert!(dst3.iter().all(|&v| v == 1000.0));
    }

    #[test]
    fn reported_convention_excludes_rfo() {
        let cfg = StreamConfig {
            n: 100,
            offset: 0,
            threads: 1,
            ntimes: 1,
        };
        assert_eq!(cfg.reported_bytes_per_sweep(StreamKernel::Triad), 2400);
        assert_eq!(cfg.reported_bytes_per_sweep(StreamKernel::Copy), 1600);
    }

    #[test]
    fn common_block_layout_congruence() {
        // With N·8 ≡ 0 (mod 512), array separations mod 512 are offset·8.
        let chip = small_chip();
        let cfg = StreamConfig {
            n: 1 << 12,
            offset: 32,
            threads: 1,
            ntimes: 1,
        };
        let programs = build_trace(&cfg, StreamKernel::Triad, &chip);
        assert_eq!(programs.len(), 1);
        // First ops: load B, load C, (compute), store A. B's base mod 512 =
        // (N+32)·8 mod 512 = 256.
        use t2opt_sim::trace::Op;
        let ops: Vec<_> = programs.into_iter().next().unwrap().take(2).collect();
        match ops[0] {
            Op::Read(addr) => assert_eq!(addr % 512, 256),
            ref other => panic!("expected read, got {other:?}"),
        }
        match ops[1] {
            Op::Read(addr) => assert_eq!(addr % 512, 0), // C: 2·(N+32)·8 ≡ 0
            ref other => panic!("expected read, got {other:?}"),
        }
    }
}
