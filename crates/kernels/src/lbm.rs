//! D3Q19 lattice-Boltzmann (§2.4): BGK collision with push-style
//! propagation on a cubic domain with halo layers and two toggle grids.
//!
//! The paper compares two data layouts for the distribution array
//! `f(0:N+1, 0:N+1, 0:N+1, 0:18, 0:1)`:
//!
//! * **IJKv** — the "propagation optimized" structure-of-arrays layout:
//!   x fastest, the 19 distribution indices slowest (19 separate N³
//!   blocks). On the T2 its stream bases alias heavily for many N, and at
//!   `N+2 ≡ 0 (mod 64)` the 38 concurrent streams additionally thrash the
//!   16-way L2 ("ruinous" cache thrashing);
//! * **IvJK** — x fastest, then the distribution index: the 19 streams of
//!   one row are separated by `(N+2)·8` bytes, and "the fortunate number of
//!   19 distribution functions leads to an automatic skew between streams".
//!
//! Parallelization is over the outer z loop; because N is generally not a
//! multiple of the thread count this produces the sawtooth "modulo effect",
//! removed by *coalescing* the z and y loops (fused I-J).

// Lattice directions are indexed `v in 0..Q` into the constant tables
// `C`/`W` throughout — that parallels the D3Q19 physics notation, so the
// index loops are deliberate.
#![allow(clippy::needless_range_loop)]

use crate::common::{place_threads, VirtualAlloc};
use serde::{Deserialize, Serialize};
use t2opt_parallel::{chunk_assignment, Coalesce2, Placement, Schedule, ThreadPool};
use t2opt_sim::trace::{chain_with_barriers, Program, StreamLoop, StreamSpec};
use t2opt_sim::{ChipConfig, SimStats, Simulation};

/// Number of discrete velocities in the D3Q19 model.
pub const Q: usize = 19;

/// D3Q19 velocity set: rest, 6 axis-aligned, 12 face diagonals.
pub const C: [(i32, i32, i32); Q] = [
    (0, 0, 0),
    (1, 0, 0),
    (-1, 0, 0),
    (0, 1, 0),
    (0, -1, 0),
    (0, 0, 1),
    (0, 0, -1),
    (1, 1, 0),
    (-1, -1, 0),
    (1, -1, 0),
    (-1, 1, 0),
    (1, 0, 1),
    (-1, 0, -1),
    (1, 0, -1),
    (-1, 0, 1),
    (0, 1, 1),
    (0, -1, -1),
    (0, 1, -1),
    (0, -1, 1),
];

/// D3Q19 lattice weights (rest 1/3, axis 1/18, diagonal 1/36).
pub const W: [f64; Q] = [
    1.0 / 3.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
];

/// Index of the direction opposite to `i` (bounce-back partner).
pub fn opposite(i: usize) -> usize {
    const OPP: [usize; Q] = [
        0, 2, 1, 4, 3, 6, 5, 8, 7, 10, 9, 12, 11, 14, 13, 16, 15, 18, 17,
    ];
    OPP[i]
}

/// Approximate floating-point work per site update of the BGK kernel,
/// used to charge the simulated FPU (the paper quotes a code balance of
/// ≈ 2.5 bytes/flop at 456 bytes/site → ≈ 180 flops/site).
pub const FLOPS_PER_SITE: f64 = 180.0;

/// Distribution-array layout (the Fig. 7 comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LbmLayout {
    /// Structure of arrays: `f(x, y, z, v)` — v-stride `(N+2)³`.
    IJKv,
    /// Interleaved: `f(x, v, y, z)` — v-stride `N+2`.
    IvJK,
}

impl LbmLayout {
    /// Element index of `(x, y, z, v)` in a grid with halo side `d = N+2`.
    #[inline]
    pub fn index(&self, d: usize, x: usize, y: usize, z: usize, v: usize) -> usize {
        debug_assert!(x < d && y < d && z < d && v < Q);
        match self {
            LbmLayout::IJKv => x + d * (y + d * (z + d * v)),
            LbmLayout::IvJK => x + d * (v + Q * (y + d * z)),
        }
    }

    /// Total elements of one grid.
    pub fn volume(&self, d: usize) -> usize {
        d * d * d * Q
    }

    /// Contiguous trace segments of one distribution grid, for layout-tuned
    /// traces: IJKv splits into the 19 velocity blocks (`d³` elements
    /// each — the streams whose bases alias for unlucky N), IvJK into the
    /// `d²` (y, z) pencils (`19·d` elements each — the 19 streams of one
    /// row live *inside* a pencil and inherit its automatic skew). Padding
    /// or shift inserted between these segments is exactly the Fig. 7
    /// layout knob the autotuner searches.
    pub fn segment_sizes(&self, d: usize) -> Vec<usize> {
        match self {
            LbmLayout::IJKv => vec![d * d * d; Q],
            LbmLayout::IvJK => vec![Q * d; d * d],
        }
    }

    /// (segment, local element) coordinates of site `(x, y, z, v)` under
    /// the segmentation of [`LbmLayout::segment_sizes`]. With packed
    /// segments this reproduces [`LbmLayout::index`] exactly.
    #[inline]
    pub fn seg_coords(&self, d: usize, x: usize, y: usize, z: usize, v: usize) -> (usize, usize) {
        debug_assert!(x < d && y < d && z < d && v < Q);
        match self {
            LbmLayout::IJKv => (v, x + d * (y + d * z)),
            LbmLayout::IvJK => (y + d * z, x + d * v),
        }
    }

    /// Label as in the Fig. 7 legend.
    pub fn label(&self) -> &'static str {
        match self {
            LbmLayout::IJKv => "IJKv",
            LbmLayout::IvJK => "IvJK",
        }
    }
}

// ---------------------------------------------------------------------
// Host implementation
// ---------------------------------------------------------------------

/// Cell type for the host solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cell {
    /// Regular fluid cell.
    Fluid,
    /// Solid wall (half-way bounce-back).
    Solid,
    /// Moving wall with the given velocity (bounce-back with momentum
    /// injection — the lid of a lid-driven cavity).
    Moving(
        /// Wall velocity (ux, uy, uz).
        [f64; 3],
    ),
}

/// Host-side D3Q19 solver over an (N+2)³ halo domain with toggle grids.
pub struct LbmHost {
    n: usize,
    d: usize,
    layout: LbmLayout,
    f: [Vec<f64>; 2],
    cells: Vec<Cell>,
    cur: usize,
    omega: f64,
}

impl LbmHost {
    /// Creates an N³ fluid domain at rest with density 1, relaxation
    /// parameter `omega` ∈ (0, 2).
    pub fn new(n: usize, layout: LbmLayout, omega: f64) -> Self {
        assert!(n >= 2);
        assert!(omega > 0.0 && omega < 2.0);
        let d = n + 2;
        let volume = layout.volume(d);
        let mut f = [vec![0.0; volume], vec![0.0; volume]];
        for g in &mut f {
            for z in 0..d {
                for y in 0..d {
                    for x in 0..d {
                        for v in 0..Q {
                            g[layout.index(d, x, y, z, v)] = W[v];
                        }
                    }
                }
            }
        }
        LbmHost {
            n,
            d,
            layout,
            f,
            cells: vec![Cell::Fluid; d * d * d],
            cur: 0,
            omega,
        }
    }

    /// Domain side N (without halo).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Marks cell (x, y, z) — halo coordinates, i.e. 0..N+2.
    pub fn set_cell(&mut self, x: usize, y: usize, z: usize, c: Cell) {
        let d = self.d;
        self.cells[x + d * (y + d * z)] = c;
    }

    /// Cell type at (x, y, z).
    pub fn cell(&self, x: usize, y: usize, z: usize) -> Cell {
        let d = self.d;
        self.cells[x + d * (y + d * z)]
    }

    /// Walls a lid-driven cavity: solid on five faces, a lid moving with
    /// `u_lid` in +x on the z = N+1 face.
    pub fn cavity(&mut self, u_lid: f64) {
        let d = self.d;
        for a in 0..d {
            for b in 0..d {
                self.set_cell(a, b, 0, Cell::Solid);
                self.set_cell(a, 0, b, Cell::Solid);
                self.set_cell(a, d - 1, b, Cell::Solid);
                self.set_cell(0, a, b, Cell::Solid);
                self.set_cell(d - 1, a, b, Cell::Solid);
                self.set_cell(a, b, d - 1, Cell::Moving([u_lid, 0.0, 0.0]));
            }
        }
    }

    /// Folds distributions pushed into the halo back onto their periodic
    /// images. Call *after* each [`LbmHost::step`] on a fully periodic box:
    /// the push scheme deposits out-flowing populations in the halo; this
    /// moves each of them to the interior cell they wrap around to, making
    /// mass and momentum conservation exact.
    pub fn fold_periodic(&mut self) {
        let d = self.d;
        let n = self.n;
        let layout = self.layout;
        let cur = self.cur;
        let g = &mut self.f[cur];
        let wrap = |c: usize| -> usize {
            if c == 0 {
                n
            } else if c == d - 1 {
                1
            } else {
                c
            }
        };
        for z in 0..d {
            for y in 0..d {
                for x in 0..d {
                    if x != 0 && x != d - 1 && y != 0 && y != d - 1 && z != 0 && z != d - 1 {
                        continue;
                    }
                    for v in 0..Q {
                        // A halo slot is only meaningful if it was pushed
                        // there by an interior upstream cell.
                        let ux = x as i32 - C[v].0;
                        let uy = y as i32 - C[v].1;
                        let uz = z as i32 - C[v].2;
                        let interior = |c: i32| c >= 1 && c <= n as i32;
                        if interior(ux) && interior(uy) && interior(uz) {
                            let src = layout.index(d, x, y, z, v);
                            let dst = layout.index(d, wrap(x), wrap(y), wrap(z), v);
                            g[dst] = g[src];
                        }
                    }
                }
            }
        }
    }

    /// One collision + push-propagation timestep over the interior,
    /// parallelized over z-planes (or fused z·y when `fused`).
    pub fn step(&mut self, pool: &ThreadPool, schedule: Schedule, fused: bool) {
        let n = self.n;
        let d = self.d;
        let layout = self.layout;
        let omega = self.omega;
        let (src, dst) = {
            let (lo, hi) = self.f.split_at_mut(1);
            if self.cur == 0 {
                (&*lo[0], &mut *hi[0])
            } else {
                (&*hi[0], &mut *lo[0])
            }
        };
        let cells = &self.cells;
        let dst_ptr = UnsafeSlice(dst.as_mut_ptr(), dst.len());

        let body = |z: usize, y: usize| {
            // SAFETY: every destination slot (x,y,z,v) is written by exactly
            // one source cell — its unique upstream neighbor — so parallel
            // workers never write the same element.
            let dst = unsafe { std::slice::from_raw_parts_mut(dst_ptr.ptr(), dst_ptr.len()) };
            for x in 1..=n {
                collide_stream_cell(src, dst, cells, layout, d, x, y, z, omega);
            }
        };

        if fused {
            let co = Coalesce2::new(n, n);
            pool.parallel_for(0..co.len(), schedule, |_tid, range| {
                for flat in range {
                    let (zi, yi) = co.decode(flat);
                    body(zi + 1, yi + 1);
                }
            });
        } else {
            pool.parallel_for(1..n + 1, schedule, |_tid, range| {
                for z in range {
                    for y in 1..=n {
                        body(z, y);
                    }
                }
            });
        }
        self.cur ^= 1;
    }

    /// Density and momentum of the interior.
    pub fn totals(&self) -> (f64, [f64; 3]) {
        let d = self.d;
        let g = &self.f[self.cur];
        let mut rho = 0.0;
        let mut mom = [0.0; 3];
        for z in 1..=self.n {
            for y in 1..=self.n {
                for x in 1..=self.n {
                    for v in 0..Q {
                        let fv = g[self.layout.index(d, x, y, z, v)];
                        rho += fv;
                        mom[0] += fv * C[v].0 as f64;
                        mom[1] += fv * C[v].1 as f64;
                        mom[2] += fv * C[v].2 as f64;
                    }
                }
            }
        }
        (rho, mom)
    }

    /// Macroscopic (ρ, u) at one interior cell.
    pub fn macroscopic(&self, x: usize, y: usize, z: usize) -> (f64, [f64; 3]) {
        let d = self.d;
        let g = &self.f[self.cur];
        let mut rho = 0.0;
        let mut u = [0.0; 3];
        for v in 0..Q {
            let fv = g[self.layout.index(d, x, y, z, v)];
            rho += fv;
            u[0] += fv * C[v].0 as f64;
            u[1] += fv * C[v].1 as f64;
            u[2] += fv * C[v].2 as f64;
        }
        if rho != 0.0 {
            for c in &mut u {
                *c /= rho;
            }
        }
        (rho, u)
    }

    /// Raw distribution access (tests).
    pub fn get_f(&self, x: usize, y: usize, z: usize, v: usize) -> f64 {
        self.f[self.cur][self.layout.index(self.d, x, y, z, v)]
    }
}

#[derive(Clone, Copy)]
struct UnsafeSlice(*mut f64, usize);

impl UnsafeSlice {
    /// Accessors so closures capture the wrapper, not the raw fields.
    fn ptr(&self) -> *mut f64 {
        self.0
    }
    fn len(&self) -> usize {
        self.1
    }
}
// SAFETY: used only for provably disjoint writes inside `step`.
unsafe impl Send for UnsafeSlice {}
unsafe impl Sync for UnsafeSlice {}

/// Equilibrium distribution for direction `v` at (ρ, u).
#[inline]
pub fn equilibrium(v: usize, rho: f64, u: &[f64; 3]) -> f64 {
    let cu = C[v].0 as f64 * u[0] + C[v].1 as f64 * u[1] + C[v].2 as f64 * u[2];
    let uu = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
    W[v] * rho * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * uu)
}

/// Collides one fluid cell and pushes the post-collision distributions to
/// its neighbors, with half-way bounce-back at solid/moving walls.
#[allow(clippy::too_many_arguments)]
#[inline]
fn collide_stream_cell(
    src: &[f64],
    dst: &mut [f64],
    cells: &[Cell],
    layout: LbmLayout,
    d: usize,
    x: usize,
    y: usize,
    z: usize,
    omega: f64,
) {
    if cells[x + d * (y + d * z)] != Cell::Fluid {
        return;
    }
    // Moments.
    let mut fv = [0.0f64; Q];
    let mut rho = 0.0;
    let mut u = [0.0f64; 3];
    for v in 0..Q {
        let f = src[layout.index(d, x, y, z, v)];
        fv[v] = f;
        rho += f;
        u[0] += f * C[v].0 as f64;
        u[1] += f * C[v].1 as f64;
        u[2] += f * C[v].2 as f64;
    }
    let inv_rho = if rho != 0.0 { 1.0 / rho } else { 0.0 };
    for c in &mut u {
        *c *= inv_rho;
    }
    // BGK relax + push.
    for v in 0..Q {
        let post = fv[v] - omega * (fv[v] - equilibrium(v, rho, &u));
        let nx = (x as i32 + C[v].0) as usize;
        let ny = (y as i32 + C[v].1) as usize;
        let nz = (z as i32 + C[v].2) as usize;
        match cells[nx + d * (ny + d * nz)] {
            Cell::Fluid => {
                dst[layout.index(d, nx, ny, nz, v)] = post;
            }
            Cell::Solid => {
                // Half-way bounce-back: reflected into the opposite
                // direction at the source cell.
                dst[layout.index(d, x, y, z, opposite(v))] = post;
            }
            Cell::Moving(uw) => {
                let cu = C[v].0 as f64 * uw[0] + C[v].1 as f64 * uw[1] + C[v].2 as f64 * uw[2];
                dst[layout.index(d, x, y, z, opposite(v))] = post - 6.0 * W[v] * rho * cu;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Simulator traces
// ---------------------------------------------------------------------

/// Configuration of a simulated LBM performance run (Fig. 7).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LbmConfig {
    /// Cubic domain side N (without halo).
    pub n: usize,
    /// Data layout.
    pub layout: LbmLayout,
    /// Thread count.
    pub threads: usize,
    /// Coalesce the outer z·y loops ("fused I-J").
    pub fused: bool,
    /// Bytes per real (8 = double, 4 = single — the §2.4 precision test).
    pub elem_size: usize,
    /// Measured timesteps.
    pub timesteps: usize,
    /// Simulate only this many y-rows per z-plane (`None` = all). The
    /// steady state is row-homogeneous, so sampling rows preserves every
    /// per-row effect (stream aliasing, set thrashing) *and* the z-plane
    /// load imbalance behind the "modulo effect", at a fraction of the
    /// simulation cost. MLUPs/s are scaled accordingly.
    pub y_rows: Option<usize>,
}

impl LbmConfig {
    /// Standard double-precision configuration (16 sampled y-rows per
    /// plane; use [`LbmConfig::full`] for the complete domain).
    pub fn new(n: usize, layout: LbmLayout, threads: usize, fused: bool) -> Self {
        LbmConfig {
            n,
            layout,
            threads,
            fused,
            elem_size: 8,
            timesteps: 1,
            y_rows: Some(16),
        }
    }

    /// Full-domain configuration (every y-row simulated).
    pub fn full(n: usize, layout: LbmLayout, threads: usize, fused: bool) -> Self {
        LbmConfig {
            y_rows: None,
            ..Self::new(n, layout, threads, fused)
        }
    }

    /// Effective y-rows per plane.
    pub fn y_eff(&self) -> usize {
        self.y_rows.map_or(self.n, |k| k.min(self.n)).max(1)
    }

    /// Site updates per measured run (sampled rows × full x extent).
    pub fn site_updates(&self) -> u64 {
        (self.n as u64) * (self.y_eff() as u64) * (self.n as u64) * self.timesteps as u64
    }
}

/// Builds the per-thread simulator programs: warm-up step, barrier 0, then
/// `timesteps` measured steps with barriers (the toggle swap).
pub fn build_trace(cfg: &LbmConfig, chip: &ChipConfig) -> Vec<Program> {
    let n = cfg.n;
    let d = n + 2;
    let layout = cfg.layout;
    let es = cfg.elem_size as u64;
    let mut va = VirtualAlloc::new();
    let volume = layout.volume(d) as u64 * es;
    let base_a = va.alloc(volume, 8192, 0);
    va.gap(4096);
    let base_b = va.alloc(volume, 8192, 0);
    let line = chip.l2.line;

    // Per-thread (z, y) row lists, over the sampled y extent.
    let y_eff = cfg.y_eff();
    let rows_per_thread: Vec<Vec<(usize, usize)>> = if cfg.fused {
        let co = Coalesce2::new(n, y_eff);
        chunk_assignment(Schedule::Static, co.len(), cfg.threads)
            .into_iter()
            .map(|chunks| {
                chunks
                    .iter()
                    .flat_map(|ch| ch.range())
                    .map(|flat| {
                        let (zi, yi) = co.decode(flat);
                        (zi + 1, yi + 1)
                    })
                    .collect()
            })
            .collect()
    } else {
        chunk_assignment(Schedule::Static, n, cfg.threads)
            .into_iter()
            .map(|chunks| {
                chunks
                    .iter()
                    .flat_map(|ch| ch.range())
                    .flat_map(|zi| (1..=y_eff).map(move |y| (zi + 1, y)))
                    .collect()
            })
            .collect()
    };

    let addr = move |base: u64, x: usize, y: usize, z: usize, v: usize| -> u64 {
        base + layout.index(d, x, y, z, v) as u64 * es
    };

    (0..cfg.threads)
        .map(|tid| {
            let rows = rows_per_thread[tid].clone();
            let mut phases = Vec::new();
            for step in 0..cfg.timesteps.max(1) {
                let (src, dst) = if step % 2 == 0 {
                    (base_a, base_b)
                } else {
                    (base_b, base_a)
                };
                let mut row_loops: Vec<StreamLoop> = Vec::new();
                for &(z, y) in &rows {
                    let mut streams = Vec::with_capacity(2 * Q);
                    for v in 0..Q {
                        streams.push(StreamSpec::load(addr(src, 1, y, z, v)));
                    }
                    for v in 0..Q {
                        let (cx, cy, cz) = C[v];
                        let nx = (1 + cx) as usize;
                        let ny = (y as i32 + cy) as usize;
                        let nz = (z as i32 + cz) as usize;
                        streams.push(StreamSpec::store(addr(dst, nx, ny, nz, v)));
                    }
                    row_loops.push(
                        StreamLoop::new(streams, n, cfg.elem_size, FLOPS_PER_SITE, line)
                            // Two touches per line expose the intra-line
                            // re-misses of the N+2 = 0 (mod 64) set
                            // thrashing (see StreamLoop::with_touches).
                            .with_touches(2),
                    );
                }
                phases.push(row_loops.into_iter().flatten());
            }
            chain_with_barriers(phases, 0)
        })
        .collect()
}

/// Result of a simulated LBM run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LbmResult {
    /// Million lattice-site updates per second — the Fig. 7 y-axis.
    pub mlups: f64,
    /// L2 hit rate over the measured window.
    pub l2_hit_rate: f64,
    /// Raw statistics.
    pub stats: SimStats,
}

/// Runs one LBM configuration on the T2 simulator.
pub fn run_sim(cfg: &LbmConfig, chip: &ChipConfig, placement: &Placement) -> LbmResult {
    let programs = build_trace(cfg, chip);
    let threads = place_threads(programs, placement, chip.core.n_cores);
    let sim = Simulation::new(chip.clone()).measure_after_barrier(0);
    let stats = sim.run(threads);
    LbmResult {
        mlups: stats.mlups(chip, cfg.site_updates()),
        l2_hit_rate: stats.l2_hit_rate(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        assert!((W.iter().sum::<f64>() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn opposite_is_an_involution_and_negates_c() {
        for v in 0..Q {
            let o = opposite(v);
            assert_eq!(opposite(o), v);
            assert_eq!(C[o].0, -C[v].0);
            assert_eq!(C[o].1, -C[v].1);
            assert_eq!(C[o].2, -C[v].2);
        }
    }

    #[test]
    fn equilibrium_at_rest_is_weighted_density() {
        for v in 0..Q {
            assert!((equilibrium(v, 2.0, &[0.0; 3]) - 2.0 * W[v]).abs() < 1e-15);
        }
    }

    #[test]
    fn layout_indices_are_unique_and_in_bounds() {
        for layout in [LbmLayout::IJKv, LbmLayout::IvJK] {
            let d = 6;
            let mut seen = vec![false; layout.volume(d)];
            for z in 0..d {
                for y in 0..d {
                    for x in 0..d {
                        for v in 0..Q {
                            let i = layout.index(d, x, y, z, v);
                            assert!(!seen[i], "{layout:?} index collision at {i}");
                            seen[i] = true;
                        }
                    }
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn x_is_unit_stride_in_both_layouts() {
        let d = 10;
        for layout in [LbmLayout::IJKv, LbmLayout::IvJK] {
            let a = layout.index(d, 3, 4, 5, 6);
            let b = layout.index(d, 4, 4, 5, 6);
            assert_eq!(b - a, 1, "{layout:?}");
        }
    }

    #[test]
    fn packed_segment_coords_reproduce_index() {
        // The prefix-sum of segment_sizes plus the local coordinate must
        // equal the flat index for every site: the tunable segmentation is
        // the identity layout when no padding is inserted.
        let d = 5;
        for layout in [LbmLayout::IJKv, LbmLayout::IvJK] {
            let sizes = layout.segment_sizes(d);
            assert_eq!(sizes.iter().sum::<usize>(), layout.volume(d));
            let mut prefix = vec![0usize; sizes.len()];
            for s in 1..sizes.len() {
                prefix[s] = prefix[s - 1] + sizes[s - 1];
            }
            for z in 0..d {
                for y in 0..d {
                    for x in 0..d {
                        for v in 0..Q {
                            let (seg, local) = layout.seg_coords(d, x, y, z, v);
                            assert!(local < sizes[seg], "{layout:?} local out of segment");
                            assert_eq!(
                                prefix[seg] + local,
                                layout.index(d, x, y, z, v),
                                "{layout:?} packed segments must be the flat layout"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn v_strides_differ_between_layouts() {
        let d = 10;
        let s_ijkv = LbmLayout::IJKv.index(d, 1, 1, 1, 1) - LbmLayout::IJKv.index(d, 1, 1, 1, 0);
        let s_ivjk = LbmLayout::IvJK.index(d, 1, 1, 1, 1) - LbmLayout::IvJK.index(d, 1, 1, 1, 0);
        assert_eq!(s_ijkv, d * d * d);
        assert_eq!(s_ivjk, d);
    }

    #[test]
    fn uniform_rest_state_is_stationary() {
        let pool = ThreadPool::new(4);
        let mut lbm = LbmHost::new(8, LbmLayout::IvJK, 1.0);
        for _ in 0..5 {
            lbm.step(&pool, Schedule::Static, false);
            lbm.fold_periodic();
        }
        for v in 0..Q {
            let f = lbm.get_f(4, 4, 4, v);
            assert!(
                (f - W[v]).abs() < 1e-14,
                "direction {v}: {f} drifted from {}",
                W[v]
            );
        }
    }

    #[test]
    fn periodic_box_conserves_mass_and_momentum() {
        let pool = ThreadPool::new(4);
        let mut lbm = LbmHost::new(8, LbmLayout::IvJK, 1.2);
        // Perturb the interior deterministically.
        let d = lbm.d;
        for z in 1..=8 {
            for y in 1..=8 {
                for x in 1..=8 {
                    for v in 0..Q {
                        let idx = lbm.layout.index(d, x, y, z, v);
                        lbm.f[0][idx] *= 1.0 + 0.01 * ((x * 3 + y * 5 + z * 7 + v) % 11) as f64;
                    }
                }
            }
        }
        let (rho0, mom0) = lbm.totals();
        for _ in 0..10 {
            lbm.step(&pool, Schedule::Static, false);
            lbm.fold_periodic();
        }
        let (rho1, mom1) = lbm.totals();
        assert!(
            (rho1 - rho0).abs() / rho0 < 1e-12,
            "mass drift: {rho0} -> {rho1}"
        );
        for k in 0..3 {
            assert!(
                (mom1[k] - mom0[k]).abs() < 1e-9 * rho0,
                "momentum[{k}] drift: {} -> {}",
                mom0[k],
                mom1[k]
            );
        }
    }

    #[test]
    fn layouts_produce_identical_physics() {
        let pool = ThreadPool::new(4);
        let run = |layout| {
            let mut lbm = LbmHost::new(6, layout, 1.3);
            lbm.cavity(0.05);
            for _ in 0..20 {
                lbm.step(&pool, Schedule::Static, false);
            }
            let (rho, u) = lbm.macroscopic(3, 3, 3);
            (rho, u)
        };
        let (r1, u1) = run(LbmLayout::IJKv);
        let (r2, u2) = run(LbmLayout::IvJK);
        assert!((r1 - r2).abs() < 1e-13);
        for k in 0..3 {
            assert!(
                (u1[k] - u2[k]).abs() < 1e-13,
                "u[{k}]: {} vs {}",
                u1[k],
                u2[k]
            );
        }
    }

    #[test]
    fn fused_and_unfused_agree() {
        let pool = ThreadPool::new(5);
        let run = |fused| {
            let mut lbm = LbmHost::new(7, LbmLayout::IvJK, 1.1);
            lbm.cavity(0.08);
            for _ in 0..15 {
                lbm.step(&pool, Schedule::Static, fused);
            }
            lbm.macroscopic(3, 4, 5)
        };
        let (r1, u1) = run(false);
        let (r2, u2) = run(true);
        assert_eq!(r1, r2, "coalescing must not change the arithmetic");
        assert_eq!(u1, u2);
    }

    #[test]
    fn cavity_develops_flow() {
        let pool = ThreadPool::new(4);
        let mut lbm = LbmHost::new(10, LbmLayout::IvJK, 1.5);
        lbm.cavity(0.1);
        for _ in 0..200 {
            lbm.step(&pool, Schedule::Static, false);
        }
        // Near the lid the fluid should be dragged in +x.
        let (_, u_top) = lbm.macroscopic(5, 5, 10);
        assert!(u_top[0] > 0.01, "lid should drag fluid: ux = {}", u_top[0]);
        // The return flow at the bottom should be opposite.
        let (_, u_bottom) = lbm.macroscopic(5, 5, 1);
        assert!(
            u_bottom[0] < 0.0,
            "return flow expected: ux = {}",
            u_bottom[0]
        );
    }

    #[test]
    fn trace_volume_scales_with_domain() {
        let chip = ChipConfig::ultrasparc_t2();
        let cfg = LbmConfig::new(16, LbmLayout::IvJK, 4, false);
        let programs = build_trace(&cfg, &chip);
        use t2opt_sim::trace::Op;
        let mut reads = 0u64;
        for p in programs {
            for op in p {
                if matches!(op, Op::Read(_)) {
                    reads += 1;
                }
            }
        }
        // 2 steps × 19 streams × N² rows. Each row is 16 doubles = 128 B,
        // but starts at x = 1 (one halo element in), so it straddles three
        // 64 B lines, each read once.
        assert_eq!(reads, 2 * 19 * 16 * 16 * 3);
    }

    #[test]
    fn ijkv_thrashing_size_maps_streams_to_same_set_and_controller() {
        // N + 2 = 64: v-stride = 64³ × 8 B = 2 MiB ≡ 0 mod 512 → all 19
        // read streams on one controller *and* one cache set group.
        let map = t2opt_core::mapping::AddressMap::ultrasparc_t2();
        let layout = LbmLayout::IJKv;
        let d = 64;
        let a0 = layout.index(d, 1, 1, 1, 0) * 8;
        let mcs: Vec<u32> = (0..Q)
            .map(|v| map.controller((layout.index(d, 1, 1, 1, v) * 8) as u64))
            .collect();
        assert!(
            mcs.iter().all(|&m| m == map.controller(a0 as u64)),
            "all v-streams must alias at N+2=64: {mcs:?}"
        );
        // IvJK at the same size: v-stride = 64·8 = 512 ≡ 0 mod 512 — also
        // aliased! But within one *row* the accesses of all 19 v's cover 19
        // distinct lines spread over controllers as x advances; the severe
        // effect is the L2 set conflict, which only IJKv has (2 MiB stride
        // = multiple of the 256 KiB set stride).
        let set_stride = 4096 * 64;
        assert_eq!((layout.index(d, 1, 1, 1, 1) * 8 - a0) % set_stride, 0);
    }
}
