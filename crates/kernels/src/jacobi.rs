//! 2-D Jacobi heat-equation relaxation (§2.3): five-point stencil on an
//! N×N grid with toggle (source/destination) arrays.
//!
//! ```text
//! dest[i][j] = 0.25 · (src[i-1][j] + src[i+1][j] + src[i][j-1] + src[i][j+1])
//! ```
//!
//! The paper's optimized variant stores **each row as one segment** of a
//! `seg_array` with
//!
//! * every row aligned to a 512 B boundary,
//! * successive rows shifted by 128 B (so rows rotate through the four
//!   memory controllers),
//! * `schedule(static,1)` — without it the 4 MB L2 cannot hold the working
//!   rows of 64 threads whose addresses are far apart.
//!
//! These parameters come straight from the access analysis — "no trial and
//! error is required". The plain reference keeps the grid contiguous and
//! shows the period-64/32 aliasing vs N (Fig. 6).

use crate::common::{place_threads, VirtualAlloc};
use serde::{Deserialize, Serialize};
use t2opt_core::layout::{LayoutSpec, SegLayout, SegmentPlan};
use t2opt_core::seg_array::SegArray;
use t2opt_parallel::{chunk_assignment, Placement, Schedule, ThreadPool};
use t2opt_sim::trace::{chain_with_barriers, Program, StreamLoop, StreamSpec};
use t2opt_sim::{ChipConfig, SimStats, Simulation};

/// Grid layout variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JacobiLayout {
    /// Contiguous row-major grid, `malloc`-style base.
    Plain,
    /// The paper's optimum: one segment per row, rows 512 B-aligned,
    /// successive rows shifted 128 B.
    Optimized,
}

/// Configuration of a Jacobi experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JacobiConfig {
    /// Grid side N (domain is N×N, boundary fixed).
    pub n: usize,
    /// Thread count.
    pub threads: usize,
    /// Loop schedule over rows (the paper: `static,1` for the optimum).
    pub schedule: Schedule,
    /// Layout variant.
    pub layout: JacobiLayout,
    /// Measured sweeps.
    pub sweeps: usize,
}

impl JacobiConfig {
    /// The paper's optimized setup.
    pub fn optimized(n: usize, threads: usize) -> Self {
        JacobiConfig {
            n,
            threads,
            schedule: Schedule::StaticChunk(1),
            layout: JacobiLayout::Optimized,
            sweeps: 2,
        }
    }

    /// The plain reference.
    pub fn plain(n: usize, threads: usize) -> Self {
        JacobiConfig {
            n,
            threads,
            schedule: Schedule::Static,
            layout: JacobiLayout::Plain,
            sweeps: 2,
        }
    }

    /// Lattice-site updates per measured run (interior points × sweeps).
    pub fn site_updates(&self) -> u64 {
        ((self.n - 2) * (self.n - 2)) as u64 * self.sweeps as u64
    }
}

/// Byte layout of one grid in the simulator's virtual address space:
/// per-row base addresses.
fn grid_rows(layout: JacobiLayout, n: usize, va: &mut VirtualAlloc) -> Vec<u64> {
    match layout {
        JacobiLayout::Plain => {
            let base = va.malloc((n * n * 8) as u64);
            (0..n).map(|i| base + (i * n * 8) as u64).collect()
        }
        JacobiLayout::Optimized => {
            let spec = LayoutSpec::new().base_align(8192).seg_align(512).shift(128);
            let plan: SegLayout = spec.plan(n * n, 8, &SegmentPlan::Sizes(vec![n; n]));
            let base = va.alloc(plan.total_bytes as u64, 8192, 0);
            plan.seg_byte_starts
                .iter()
                .map(|&s| base + s as u64)
                .collect()
        }
    }
}

/// Builds per-thread simulator programs: one warm-up sweep, barrier 0
/// (measurement opens), then `sweeps` measured sweeps with barriers in
/// between (the toggle-array swap needs one anyway).
pub fn build_trace(cfg: &JacobiConfig, chip: &ChipConfig) -> Vec<Program> {
    let mut va = VirtualAlloc::new();
    let grid_a = grid_rows(cfg.layout, cfg.n, &mut va);
    va.gap(4096);
    let grid_b = grid_rows(cfg.layout, cfg.n, &mut va);
    let line = chip.l2.line;
    let rows = cfg.n - 2;
    let assignment = chunk_assignment(cfg.schedule, rows, cfg.threads);
    let total_sweeps = cfg.sweeps + 1; // + warm-up

    (0..cfg.threads)
        .map(|tid| {
            let chunks = assignment[tid].clone();
            let grid_a = grid_a.clone();
            let grid_b = grid_b.clone();
            let n = cfg.n;
            let mut sweeps = Vec::new();
            for s in 0..total_sweeps {
                let (src, dst): (&[u64], &[u64]) = if s % 2 == 0 {
                    (&grid_a, &grid_b)
                } else {
                    (&grid_b, &grid_a)
                };
                let mut row_loops: Vec<StreamLoop> = Vec::new();
                for ch in &chunks {
                    for r in ch.range() {
                        let i = r + 1; // interior row index
                        row_loops.push(StreamLoop::new(
                            vec![
                                StreamSpec::load(src[i - 1]),
                                StreamSpec::load(src[i]),
                                StreamSpec::load(src[i + 1]),
                                StreamSpec::store(dst[i]),
                            ],
                            n,
                            8,
                            4.0,
                            line,
                        ));
                    }
                }
                sweeps.push(row_loops.into_iter().flatten());
            }
            chain_with_barriers(sweeps, 0)
        })
        .collect()
}

/// Result of a simulated Jacobi run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JacobiResult {
    /// Million lattice-site updates per second — the Fig. 6 y-axis.
    pub mlups: f64,
    /// L2 hit rate over the measured window.
    pub l2_hit_rate: f64,
    /// Raw statistics.
    pub stats: SimStats,
}

/// Runs one Jacobi configuration on the T2 simulator.
pub fn run_sim(cfg: &JacobiConfig, chip: &ChipConfig, placement: &Placement) -> JacobiResult {
    let programs = build_trace(cfg, chip);
    let threads = place_threads(programs, placement, chip.core.n_cores);
    let sim = Simulation::new(chip.clone()).measure_after_barrier(0);
    let stats = sim.run(threads);
    JacobiResult {
        mlups: stats.mlups(chip, cfg.site_updates()),
        l2_hit_rate: stats.l2_hit_rate(),
        stats,
    }
}

// ---------------------------------------------------------------------
// Host execution (correctness + examples)
// ---------------------------------------------------------------------

/// The serial per-row kernel of the paper (`relax_line`): pure slice code.
#[inline]
pub fn relax_line(dst: &mut [f64], above: &[f64], below: &[f64], src: &[f64]) {
    let n = dst.len();
    for j in 1..n - 1 {
        dst[j] = (above[j] + below[j] + src[j - 1] + src[j + 1]) * 0.25;
    }
}

/// A host-side Jacobi solver over segmented row storage, exercising the
/// public `SegArray` API end to end.
pub struct JacobiHost {
    n: usize,
    grids: [SegArray<f64>; 2],
    /// Which grid currently holds the solution.
    cur: usize,
}

impl JacobiHost {
    /// Creates an N×N problem with the paper's optimized layout and the
    /// given boundary function (applied to both grids).
    pub fn new(n: usize, boundary: impl Fn(usize, usize) -> f64) -> Self {
        assert!(n >= 3, "need at least one interior point");
        let mk = || {
            SegArray::<f64>::builder(n * n)
                .segment_sizes(vec![n; n])
                .spec(LayoutSpec::new().base_align(8192).seg_align(512).shift(128))
                .build()
        };
        let mut grids = [mk(), mk()];
        for g in &mut grids {
            for i in 0..n {
                let row = g.segment_mut(i);
                for (j, x) in row.iter_mut().enumerate() {
                    if i == 0 || i == n - 1 || j == 0 || j == n - 1 {
                        *x = boundary(i, j);
                    }
                }
            }
        }
        JacobiHost { n, grids, cur: 0 }
    }

    /// Grid side.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Runs `sweeps` relaxation sweeps on the pool with the given schedule.
    pub fn run(&mut self, sweeps: usize, pool: &ThreadPool, schedule: Schedule) {
        let n = self.n;
        for _ in 0..sweeps {
            let (src, dst) = self.split();
            {
                let dst_rows: Vec<parking_lot::Mutex<&mut [f64]>> = dst
                    .segments_mut()
                    .into_iter()
                    .map(parking_lot::Mutex::new)
                    .collect();
                pool.parallel_for(1..n - 1, schedule, |_tid, range| {
                    for i in range {
                        let mut d = dst_rows[i].lock();
                        relax_line(
                            &mut d,
                            src.segment(i - 1),
                            src.segment(i + 1),
                            src.segment(i),
                        );
                    }
                });
            }
            self.cur ^= 1;
        }
    }

    /// Runs sweeps serially (reference implementation).
    pub fn run_serial(&mut self, sweeps: usize) {
        let n = self.n;
        for _ in 0..sweeps {
            let (src, dst) = self.split();
            for i in 1..n - 1 {
                let above = src.segment(i - 1).to_vec();
                let below = src.segment(i + 1).to_vec();
                let center = src.segment(i).to_vec();
                relax_line(dst.segment_mut(i), &above, &below, &center);
            }
            self.cur ^= 1;
        }
    }

    fn split(&mut self) -> (&SegArray<f64>, &mut SegArray<f64>) {
        let (lo, hi) = self.grids.split_at_mut(1);
        if self.cur == 0 {
            (&lo[0], &mut hi[0])
        } else {
            (&hi[0], &mut lo[0])
        }
    }

    /// Value at (i, j) of the current solution.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.grids[self.cur].segment(i)[j]
    }

    /// The current solution flattened to row-major order.
    pub fn to_vec(&self) -> Vec<f64> {
        self.grids[self.cur].to_vec()
    }

    /// Maximum interior residual ‖u − stencil(u)‖∞ of the current solution.
    pub fn residual(&self) -> f64 {
        let g = &self.grids[self.cur];
        let n = self.n;
        let mut worst = 0.0f64;
        for i in 1..n - 1 {
            let above = g.segment(i - 1);
            let below = g.segment(i + 1);
            let row = g.segment(i);
            for j in 1..n - 1 {
                let stencil = (above[j] + below[j] + row[j - 1] + row[j + 1]) * 0.25;
                worst = worst.max((row[j] - stencil).abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relax_line_matches_formula() {
        let above = [1.0, 2.0, 3.0, 4.0];
        let below = [5.0, 6.0, 7.0, 8.0];
        let src = [0.0, 10.0, 20.0, 0.0];
        let mut dst = [0.0; 4];
        relax_line(&mut dst, &above, &below, &src);
        assert_eq!(dst[0], 0.0);
        assert_eq!(dst[3], 0.0);
        assert_eq!(dst[1], (2.0 + 6.0 + 0.0 + 20.0) * 0.25);
        assert_eq!(dst[2], (3.0 + 7.0 + 10.0 + 0.0) * 0.25);
    }

    #[test]
    fn linear_boundary_is_a_fixed_point() {
        // u(i,j) = j is harmonic and matches the stencil exactly: one sweep
        // must leave a linear field unchanged.
        let n = 17;
        let mut solver = JacobiHost::new(n, |_i, j| j as f64);
        let pool = ThreadPool::new(4);
        // Start from zero interior: converges toward u = j.
        solver.run(2000, &pool, Schedule::StaticChunk(1));
        for i in (1..n - 1).step_by(3) {
            for j in (1..n - 1).step_by(3) {
                assert!(
                    (solver.get(i, j) - j as f64).abs() < 1e-6,
                    "u({i},{j}) = {} should approach {}",
                    solver.get(i, j),
                    j
                );
            }
        }
        assert!(solver.residual() < 1e-7);
    }

    #[test]
    fn parallel_schedules_agree_with_each_other() {
        let n = 33;
        let boundary = |i: usize, j: usize| (i * 7 % 5) as f64 + (j % 3) as f64;
        let pool = ThreadPool::new(8);
        let mut s1 = JacobiHost::new(n, boundary);
        let mut s2 = JacobiHost::new(n, boundary);
        let mut s3 = JacobiHost::new(n, boundary);
        s1.run(50, &pool, Schedule::Static);
        s2.run(50, &pool, Schedule::StaticChunk(1));
        s3.run(50, &pool, Schedule::Dynamic(2));
        assert_eq!(
            s1.to_vec(),
            s2.to_vec(),
            "schedules must not change the math"
        );
        assert_eq!(s1.to_vec(), s3.to_vec());
    }

    #[test]
    fn optimized_rows_rotate_controllers() {
        let mut va = VirtualAlloc::new();
        let rows = grid_rows(JacobiLayout::Optimized, 65, &mut va);
        let map = t2opt_core::mapping::AddressMap::ultrasparc_t2();
        let mcs: Vec<u32> = rows[..8].iter().map(|&r| map.controller(r)).collect();
        assert_eq!(mcs, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn plain_rows_alias_when_n_is_multiple_of_64() {
        // N ≡ 0 (mod 64): every row base ≡ same value mod 512 → all rows on
        // one controller — the Fig. 6 "plain" dips.
        let mut va = VirtualAlloc::new();
        let rows = grid_rows(JacobiLayout::Plain, 128, &mut va);
        let map = t2opt_core::mapping::AddressMap::ultrasparc_t2();
        let mc0 = map.controller(rows[0]);
        assert!(rows.iter().all(|&r| map.controller(r) == mc0));
    }

    #[test]
    fn sim_optimized_beats_plain_at_aliased_size() {
        let chip = ChipConfig::ultrasparc_t2();
        // N chosen ≡ 0 mod 64 (plain rows fully aliased), large enough that
        // the two grids (2 × 8 MiB) dwarf the 4 MB L2.
        let n = 1024;
        let plain = run_sim(&JacobiConfig::plain(n, 32), &chip, &Placement::t2_scatter());
        let opt = run_sim(
            &JacobiConfig::optimized(n, 32),
            &chip,
            &Placement::t2_scatter(),
        );
        assert!(
            opt.mlups > 1.3 * plain.mlups,
            "optimized {:.0} MLUPs vs plain {:.0} MLUPs",
            opt.mlups,
            plain.mlups
        );
    }

    #[test]
    fn sim_scales_with_threads() {
        let chip = ChipConfig::ultrasparc_t2();
        let n = 1024;
        let m8 = run_sim(
            &JacobiConfig::optimized(n, 8),
            &chip,
            &Placement::t2_scatter(),
        );
        let m64 = run_sim(
            &JacobiConfig::optimized(n, 64),
            &chip,
            &Placement::t2_scatter(),
        );
        assert!(
            m64.mlups > 2.0 * m8.mlups,
            "64 T ({:.0}) must scale well past 8 T ({:.0})",
            m64.mlups,
            m8.mlups
        );
    }

    #[test]
    fn site_updates_counts_interior_only() {
        let cfg = JacobiConfig::optimized(10, 4);
        assert_eq!(cfg.site_updates(), 64 * 2);
    }
}
