//! # t2opt-kernels
//!
//! The benchmark kernels of Hager, Zeiser & Wellein (2008), each in two
//! forms:
//!
//! * a **host implementation** exercising the real `t2opt-core` data
//!   structures and the `t2opt-parallel` runtime (used for correctness
//!   tests, the Fig. 5 software-overhead measurement, and the examples);
//! * a **trace builder** that lays the kernel's arrays out in a synthetic
//!   address space and emits per-thread cache-line access programs for the
//!   `t2opt-sim` UltraSPARC T2 simulator (used to regenerate the paper's
//!   figures).
//!
//! | Module | Paper section | Figures |
//! |---|---|---|
//! | [`stream`] | §2.1 McCalpin STREAM | Fig. 2 |
//! | [`triad`] | §2.2 vector triad + segmented iterators | Figs. 4, 5 |
//! | [`jacobi`] | §2.3 2-D relaxation solver | Fig. 6 |
//! | [`lbm`] | §2.4 D3Q19 lattice-Boltzmann | Fig. 7 |

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod common;
pub mod jacobi;
pub mod lbm;
pub mod stream;
pub mod triad;
