//! The vector triad `A(:) = B(:) + C(:)·D(:)` (§2.2) — the paper's flexible
//! bandwidth probe with three read streams and one write stream.
//!
//! Fig. 4 sweeps the array length N over a narrow window and compares:
//!
//! * **plain** — arrays allocated back to back with `malloc`, base
//!   addresses uncontrolled: performance is erratic with period 64 DP words
//!   between a hard ceiling (~4 controllers) and a hard floor (~1);
//! * **align 8k** — every array base on a page boundary: *forces* the floor
//!   (all streams congruent mod 512 B);
//! * **align 8k + offset k** — array bases additionally displaced by
//!   0·k, 1·k, 2·k, 3·k bytes: k = 128 pins the ceiling (each stream on its
//!   own controller), k = 64 stays on the floor (64 B flips only the bank
//!   bit), k = 32 lands in between.
//!
//! Fig. 5 measures the *software* overhead of the segmented-iterator
//! machinery against a plain parallel loop — reproduced here on the host
//! with [`run_host_segmented`] vs [`run_host_plain`].

use crate::common::{place_threads, VirtualAlloc};
use serde::{Deserialize, Serialize};
use t2opt_core::iter::seg_zip4;
use t2opt_core::layout::LayoutSpec;
use t2opt_core::seg_array::SegArray;
use t2opt_parallel::{chunk_assignment, Placement, Schedule, ThreadPool};
use t2opt_sim::trace::{chain_with_barriers, Program, StreamLoop, StreamSpec};
use t2opt_sim::{ChipConfig, SimStats, Simulation};

/// How the four arrays are laid out (the Fig. 4 variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TriadLayout {
    /// Contiguous `malloc` allocations, uncontrolled bases.
    Plain,
    /// Every array aligned to an 8 kB page boundary (the worst case).
    Align8k,
    /// 8 kB alignment plus per-array byte offsets 0, k, 2k, 3k for
    /// A, B, C, D respectively.
    AlignOffset(
        /// The offset step k in bytes (paper: 32, 64, 128).
        u32,
    ),
}

impl TriadLayout {
    /// Byte base addresses of A, B, C, D for `n`-element f64 arrays.
    pub fn bases(&self, n: usize, va: &mut VirtualAlloc) -> [u64; 4] {
        let bytes = n as u64 * 8;
        match *self {
            TriadLayout::Plain => {
                let a = va.malloc(bytes);
                let b = va.malloc(bytes);
                let c = va.malloc(bytes);
                let d = va.malloc(bytes);
                [a, b, c, d]
            }
            TriadLayout::Align8k => {
                let a = va.alloc(bytes, 8192, 0);
                let b = va.alloc(bytes, 8192, 0);
                let c = va.alloc(bytes, 8192, 0);
                let d = va.alloc(bytes, 8192, 0);
                [a, b, c, d]
            }
            TriadLayout::AlignOffset(k) => {
                let k = k as u64;
                let a = va.alloc(bytes, 8192, 0);
                let b = va.alloc(bytes, 8192, k);
                let c = va.alloc(bytes, 8192, 2 * k);
                let d = va.alloc(bytes, 8192, 3 * k);
                [a, b, c, d]
            }
        }
    }

    /// Human-readable label (matches the Fig. 4 legend).
    pub fn label(&self) -> String {
        match self {
            TriadLayout::Plain => "plain".into(),
            TriadLayout::Align8k => "align 8k".into(),
            TriadLayout::AlignOffset(k) => format!("align=8k offset={k}"),
        }
    }
}

/// Configuration of a vector-triad experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TriadConfig {
    /// Array length in DP words.
    pub n: usize,
    /// Layout variant.
    pub layout: TriadLayout,
    /// Thread count.
    pub threads: usize,
    /// Measured sweeps.
    pub ntimes: usize,
}

/// Result of a simulated triad run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TriadResult {
    /// Bandwidth counting 32 B per element (4 words), GB/s — the Fig. 4
    /// y-axis.
    pub gbs: f64,
    /// Raw statistics.
    pub stats: SimStats,
}

/// Builds per-thread simulator programs: warm-up sweep, barrier 0 (window
/// opens), then `ntimes` measured sweeps with barriers — the segment split
/// is the paper's manual ⌊N/t⌋+1 / ⌊N/t⌋ scheduling.
pub fn build_trace(cfg: &TriadConfig, chip: &ChipConfig) -> Vec<Program> {
    let mut va = VirtualAlloc::new();
    let line = chip.l2.line;
    let assignment = chunk_assignment(Schedule::Static, cfg.n, cfg.threads);

    // Per-thread byte base of each array's chunk. The *plain* variant is a
    // contiguous malloc'd array carved by the OpenMP static schedule, so
    // chunk starts land wherever ⌊N/t⌋ arithmetic puts them. The aligned
    // variants go through the paper's seg_array framework, where "all
    // arrays and also OpenMP chunks can be aligned on definite address
    // boundaries" (§2.2): every thread's segment starts on an 8 kB
    // boundary, displaced by the per-array byte offset.
    let chunk_bases: Vec<[u64; 4]> = match cfg.layout {
        TriadLayout::Plain => {
            let [a, b, c, d] = cfg.layout.bases(cfg.n, &mut va);
            (0..cfg.threads)
                .map(|t| {
                    let off = assignment[t].first().map_or(0, |ch| ch.start as u64 * 8);
                    [a + off, b + off, c + off, d + off]
                })
                .collect()
        }
        TriadLayout::Align8k | TriadLayout::AlignOffset(_) => {
            let k = match cfg.layout {
                TriadLayout::AlignOffset(k) => k as u64,
                _ => 0,
            };
            let max_chunk_bytes = assignment
                .iter()
                .filter_map(|c| c.first())
                .map(|ch| ch.len() as u64 * 8)
                .max()
                .unwrap_or(0);
            let seg_stride = (max_chunk_bytes + 8192 + 8191) & !8191;
            let array_span = seg_stride * cfg.threads as u64;
            let a = va.alloc(array_span, 8192, 0);
            let b = va.alloc(array_span, 8192, k);
            let c = va.alloc(array_span, 8192, 2 * k);
            let d = va.alloc(array_span, 8192, 3 * k);
            (0..cfg.threads)
                .map(|t| {
                    let s = t as u64 * seg_stride;
                    [a + s, b + s, c + s, d + s]
                })
                .collect()
        }
    };

    (0..cfg.threads)
        .map(|tid| {
            let chunks = assignment[tid].clone();
            let [a, b, c, d] = chunk_bases[tid];
            let chunk_start = chunks.first().map_or(0, |ch| ch.start);
            let mut sweeps = Vec::new();
            for _ in 0..=cfg.ntimes {
                let mut per_chunk: Vec<StreamLoop> = Vec::new();
                for ch in &chunks {
                    // Offsets are relative to this thread's own chunk base.
                    let off = (ch.start - chunk_start) as u64 * 8;
                    per_chunk.push(StreamLoop::new(
                        vec![
                            StreamSpec::load(b + off),
                            StreamSpec::load(c + off),
                            StreamSpec::load(d + off),
                            StreamSpec::store(a + off),
                        ],
                        ch.len(),
                        8,
                        2.0,
                        line,
                    ));
                }
                sweeps.push(per_chunk.into_iter().flatten());
            }
            chain_with_barriers(sweeps, 0)
        })
        .collect()
}

/// Runs one vector-triad configuration on the T2 simulator.
pub fn run_sim(cfg: &TriadConfig, chip: &ChipConfig, placement: &Placement) -> TriadResult {
    let programs = build_trace(cfg, chip);
    let threads = place_threads(programs, placement, chip.core.n_cores);
    let sim = Simulation::new(chip.clone()).measure_after_barrier(0);
    let stats = sim.run(threads);
    let reported = cfg.n as u64 * 32 * cfg.ntimes as u64;
    TriadResult {
        gbs: stats.reported_bandwidth_gbs(chip, reported),
        stats,
    }
}

/// One host triad sweep over plain slices with the pool (the Fig. 5
/// baseline). Returns GB/s at 32 B/element.
pub fn run_host_plain(n: usize, pool: &ThreadPool, ntimes: usize) -> f64 {
    let a = vec![0.0f64; n];
    let b = vec![1.0f64; n];
    let c = vec![2.0f64; n];
    let d = vec![0.5f64; n];
    let a_ptr = a.as_ptr() as usize;
    let mut best = f64::INFINITY;
    for _ in 0..=ntimes {
        let t0 = std::time::Instant::now();
        pool.parallel_for(0..n, Schedule::Static, |_tid, range| {
            // SAFETY: disjoint ranges per thread (exact cover).
            let a = unsafe { std::slice::from_raw_parts_mut(a_ptr as *mut f64, n) };
            for i in range {
                a[i] = b[i] + c[i] * d[i];
            }
        });
        best = best.min(t0.elapsed().as_secs_f64());
    }
    std::hint::black_box(&a);
    n as f64 * 32.0 / best / 1e9
}

/// One host triad sweep through the segmented-iterator machinery: arrays
/// are `SegArray`s with one segment per thread (the paper's manual
/// scheduling); each worker runs the serial kernel on its own segment
/// slices. Returns GB/s at 32 B/element.
pub fn run_host_segmented(n: usize, pool: &ThreadPool, ntimes: usize) -> f64 {
    let t = pool.num_threads();
    let spec = LayoutSpec::new().base_align(8192);
    let mut a = SegArray::<f64>::builder(n)
        .segments(t)
        .spec(spec.clone())
        .build();
    let mut b = SegArray::<f64>::builder(n)
        .segments(t)
        .spec(spec.clone())
        .build();
    let mut c = SegArray::<f64>::builder(n)
        .segments(t)
        .spec(spec.clone())
        .build();
    let mut d = SegArray::<f64>::builder(n).segments(t).spec(spec).build();
    b.fill(1.0);
    c.fill(2.0);
    d.fill(0.5);
    let mut best = f64::INFINITY;
    for _ in 0..=ntimes {
        let t0 = std::time::Instant::now();
        {
            // Hand each worker its own (disjoint) segment slices.
            let a_segs: Vec<parking_lot::Mutex<&mut [f64]>> = a
                .segments_mut()
                .into_iter()
                .map(parking_lot::Mutex::new)
                .collect();
            let b_ref = &b;
            let c_ref = &c;
            let d_ref = &d;
            pool.run(|tid| {
                let mut a_seg = a_segs[tid].lock();
                triad_kernel(
                    &mut a_seg,
                    b_ref.segment(tid),
                    c_ref.segment(tid),
                    d_ref.segment(tid),
                );
            });
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    std::hint::black_box(a.get(n.saturating_sub(1).min(n.saturating_sub(1))));
    n as f64 * 32.0 / best / 1e9
}

/// The serial low-level triad kernel — "purely serial... compiled
/// separately... to produce the possibly most efficient machine code"
/// (§2.2). Written over plain slices so the compiler vectorizes it exactly
/// like a C or Fortran loop.
#[inline]
pub fn triad_kernel(a: &mut [f64], b: &[f64], c: &[f64], d: &[f64]) {
    let n = a.len().min(b.len()).min(c.len()).min(d.len());
    for i in 0..n {
        a[i] = b[i] + c[i] * d[i];
    }
}

/// Sequential single-threaded triad through [`seg_zip4`] (correctness
/// reference for the hierarchical machinery).
pub fn triad_segmented_serial(
    a: &mut SegArray<f64>,
    b: &SegArray<f64>,
    c: &SegArray<f64>,
    d: &SegArray<f64>,
) {
    seg_zip4(a, b, c, d, triad_kernel);
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2opt_core::iter::HierExt;

    #[test]
    fn layout_bases_have_documented_congruences() {
        let mut va = VirtualAlloc::new();
        let [a, b, c, d] = TriadLayout::Align8k.bases(1000, &mut va);
        for base in [a, b, c, d] {
            assert_eq!(base % 8192, 0);
        }
        let mut va = VirtualAlloc::new();
        let [a, b, c, d] = TriadLayout::AlignOffset(128).bases(1000, &mut va);
        assert_eq!(a % 512, 0);
        assert_eq!(b % 512, 128);
        assert_eq!(c % 512, 256);
        assert_eq!(d % 512, 384);
    }

    #[test]
    fn fig4_ordering_floor_and_ceiling() {
        // align-8k = hard floor (all four arrays on one controller);
        // offset 32 gives bases 0/32/64/96 — still all on controller 0
        // (only the bank bit varies) → near the floor;
        // offset 64 gives 0/64/128/192 — two controllers → midway;
        // offset 128 gives 0/128/256/384 — all four controllers → ceiling.
        let chip = ChipConfig::ultrasparc_t2();
        let n = 1 << 20; // 4 arrays × 8 MiB ≫ L2
        let bw = |layout| {
            run_sim(
                &TriadConfig {
                    n,
                    layout,
                    threads: 64,
                    ntimes: 1,
                },
                &chip,
                &Placement::t2_scatter(),
            )
            .gbs
        };
        let floor = bw(TriadLayout::Align8k);
        let k32 = bw(TriadLayout::AlignOffset(32));
        let k64 = bw(TriadLayout::AlignOffset(64));
        let ceil = bw(TriadLayout::AlignOffset(128));
        assert!(ceil > 1.5 * floor, "ceiling {ceil:.1} vs floor {floor:.1}");
        // offset 32 keeps one controller (it only spreads that controller's
        // two banks), offset 64 reaches two controllers, offset 128 all
        // four: the curves must be ordered floor ≤ 32 ≤ 64 < 128.
        assert!(
            k32 >= 0.9 * floor && k32 <= 1.05 * k64 && k32 < 0.95 * ceil,
            "offset 32 ({k32:.1}) should sit between floor ({floor:.1}) and offset 64 ({k64:.1})"
        );
        // Two controllers already recover most of the ceiling in the
        // simulator (the thread-serialization chain, not controller drain,
        // binds there); require only that it clearly beats the floor and
        // does not exceed the four-controller case.
        assert!(
            k64 > 1.2 * floor && k64 <= 1.1 * ceil,
            "offset 64 ({k64:.1}) must sit between floor ({floor:.1}) and ceiling ({ceil:.1})"
        );
    }

    #[test]
    fn segmented_serial_matches_plain() {
        let n = 10_000;
        let t = 8;
        let spec = LayoutSpec::t2_rotating();
        let mut a = SegArray::<f64>::builder(n)
            .segments(t)
            .spec(spec.clone())
            .build();
        let mut b = SegArray::<f64>::builder(n)
            .segments(t)
            .spec(spec.clone())
            .build();
        let mut c = SegArray::<f64>::builder(n)
            .segments(t)
            .spec(spec.clone())
            .build();
        let mut d = SegArray::<f64>::builder(n).segments(t).spec(spec).build();
        b.fill_with(|i| i as f64);
        c.fill_with(|i| (i % 7) as f64);
        d.fill_with(|i| 1.0 / (1.0 + i as f64));
        triad_segmented_serial(&mut a, &b, &c, &d);
        let reference: Vec<f64> = (0..n)
            .map(|i| i as f64 + (i % 7) as f64 * (1.0 / (1.0 + i as f64)))
            .collect();
        assert_eq!(a.max_abs_diff(&reference), 0.0, "must be bit-identical");
    }

    #[test]
    fn host_parallel_segmented_matches_reference() {
        let pool = ThreadPool::new(4);
        let gbs = run_host_segmented(100_000, &pool, 1);
        assert!(gbs > 0.0);
    }

    #[test]
    fn host_plain_runs() {
        let pool = ThreadPool::new(4);
        let gbs = run_host_plain(100_000, &pool, 1);
        assert!(gbs > 0.0);
    }

    #[test]
    fn trace_volume_matches_n() {
        let chip = ChipConfig::ultrasparc_t2();
        let cfg = TriadConfig {
            n: 4096,
            layout: TriadLayout::Align8k,
            threads: 4,
            ntimes: 1,
        };
        let programs = build_trace(&cfg, &chip);
        use t2opt_sim::trace::Op;
        let mut reads = 0usize;
        let mut writes = 0usize;
        for p in programs {
            for op in p {
                match op {
                    Op::Read(_) => reads += 1,
                    Op::Write(_) => writes += 1,
                    _ => {}
                }
            }
        }
        // 2 sweeps (warm-up + 1 measured) × 3 read streams × 512 lines.
        assert_eq!(reads, 2 * 3 * 4096 * 8 / 64);
        assert_eq!(writes, 2 * 4096 * 8 / 64);
    }
}
