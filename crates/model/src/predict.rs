//! The closed-form predictor: capacity and latency terms, and their max.

use crate::shape::KernelShape;
use crate::timing::ModelTiming;
use serde::{Deserialize, Serialize};
use t2opt_core::advisor::StreamDesc;
use t2opt_core::chip::{ChipSpec, SocketTopology};
use t2opt_core::mapping::{MapPolicy, PagePlacement};

/// Which of the two model terms set the predicted runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelBound {
    /// Controller occupancy (bandwidth), scaled by the layout's
    /// controller-utilization efficiency.
    Capacity,
    /// Miss latency over the available memory-level parallelism, including
    /// the queue wait behind co-resident in-flight misses.
    Latency,
}

/// The model's answer for one (chip, workload, layout) triple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelPrediction {
    /// Predicted bandwidth in GB/s of the shape's reported bytes (0 for a
    /// degenerate shape that moves no data).
    pub gbs: f64,
    /// Predicted runtime in cycles.
    pub cycles: f64,
    /// Predicted runtime in seconds.
    pub time_secs: f64,
    /// Cycle-weighted controller-utilization efficiency in `(0, 1]` — the
    /// advisor's statistic, reweighted by service times so the FB-DIMM
    /// read/write asymmetry is priced in.
    pub efficiency: f64,
    /// Which term set the runtime.
    pub bound: ModelBound,
    /// Mean distinct controllers hit by blocking units per phase,
    /// averaged over units with any blocking traffic (0 for pure
    /// write-back shapes).
    pub concurrent_controllers: f64,
}

impl ModelPrediction {
    /// Lattice-site update rate in MLUP/s for a kernel of `sites` site
    /// updates per run (the paper's Fig. 7 unit); 0 for a degenerate
    /// zero-time prediction.
    pub fn mlups(&self, sites: u64) -> f64 {
        if self.time_secs > 0.0 {
            sites as f64 / self.time_secs / 1e6
        } else {
            0.0
        }
    }
}

/// Per-unit phase analysis, cycle-weighted (see [`PerfModel::predict`]).
struct UnitAnalysis {
    /// Controller-utilization efficiency of this unit's streams, `(0, 1]`.
    efficiency: f64,
    /// Controller occupancy cycles per advanced line (all streams).
    occ_per_line: f64,
    /// Mean distinct controllers hit by blocking units per phase.
    concurrent_controllers: f64,
    /// Blocking misses per advanced line.
    blocking_per_line: u64,
}

/// The closed-form performance model for one chip. See the crate docs for
/// the equations and DESIGN.md §10 for calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    policy: MapPolicy,
    timing: ModelTiming,
    numa: SocketTopology,
}

impl PerfModel {
    /// A model of the given mapping policy and timing, on a single socket.
    pub fn new(policy: MapPolicy, timing: ModelTiming) -> Self {
        PerfModel {
            policy,
            timing,
            numa: SocketTopology::single(),
        }
    }

    /// Sets the socket/locality structure (see [`Self::predict_placed`]).
    pub fn with_numa(mut self, numa: SocketTopology) -> Self {
        self.numa = numa;
        self
    }

    /// A model for a chip topology spec, on the calibrated T2 latency
    /// template (see [`ModelTiming::from_spec`]).
    pub fn for_spec(spec: &ChipSpec) -> Self {
        PerfModel::new(spec.map, ModelTiming::from_spec(spec)).with_numa(spec.sockets)
    }

    /// The mapping policy in use.
    pub fn policy(&self) -> &MapPolicy {
        &self.policy
    }

    /// The timing in use.
    pub fn timing(&self) -> &ModelTiming {
        &self.timing
    }

    /// Predicts runtime and bandwidth for a workload shape under first-touch
    /// (socket-local) page placement — on a single-socket chip, simply *the*
    /// prediction. Equivalent to
    /// `predict_placed(shape, PagePlacement::FirstTouch)`.
    pub fn predict(&self, shape: &KernelShape) -> ModelPrediction {
        self.predict_placed(shape, PagePlacement::FirstTouch)
    }

    /// Predicts runtime and bandwidth for a workload shape under the given
    /// NUMA page placement.
    ///
    /// The locality term (DESIGN §14): a fraction
    /// `f = placement.remote_fraction(S)` of all line transfers crosses the
    /// shared inter-socket link, adding (a) a downstream link stage of
    /// `f · lines · link_cycles_per_line` on top of the controller pipeline
    /// — the link is one resource shared by all sockets, crossed *after*
    /// service — and (b) `f · (remote_read_extra + link_cycles_per_line)`
    /// cycles to the mean blocking-miss latency. With `f = 0` (first-touch,
    /// or any placement on one socket) both terms vanish and this reduces
    /// bitwise to the pre-NUMA closed form.
    pub fn predict_placed(&self, shape: &KernelShape, placement: PagePlacement) -> ModelPrediction {
        let remote_fraction = placement.remote_fraction(self.numa.n_sockets);
        let n_mc = self.policy.geometry().num_controllers() as f64;
        let mut total_occ = 0.0;
        let mut weighted_eff = 0.0;
        let mut blocking_misses = 0.0;
        let mut spread_sum = 0.0;
        let mut spread_units = 0.0;
        for unit in &shape.units {
            let a = self.unit_analysis(&unit.streams);
            let occ = unit.lines as f64 * a.occ_per_line;
            total_occ += occ;
            weighted_eff += occ * a.efficiency;
            blocking_misses += (unit.lines * a.blocking_per_line) as f64;
            if a.blocking_per_line > 0 && unit.lines > 0 {
                spread_sum += a.concurrent_controllers;
                spread_units += 1.0;
            }
        }

        let efficiency = if total_occ > 0.0 {
            weighted_eff / total_occ
        } else {
            1.0
        };
        let t_cap = total_occ / (n_mc * efficiency);

        // Memory-level parallelism the cores can sustain; the queue wait a
        // miss sees is set by how those in-flight misses spread over the
        // controllers: `spread = 1` (full convoy) piles them all on one.
        let concurrency = (shape.threads.max(1) * self.timing.outstanding_misses.max(1)) as f64;
        let spread = if spread_units > 0.0 {
            (spread_sum / spread_units).max(1.0)
        } else {
            0.0
        };
        let t_lat = if blocking_misses > 0.0 {
            // `spread` counts distinct controllers per socket group (the
            // unit_analysis fold); every socket replays the same pattern on
            // its own group, so the chip-wide active-controller count — what
            // the in-flight misses divide over — is `spread × n_sockets`.
            let active = spread * self.numa.n_sockets.max(1) as f64;
            let in_flight = (concurrency / active)
                .min(self.timing.queue_depth as f64)
                .max(1.0);
            let queue_wait = (in_flight - 1.0) * self.timing.read_service as f64;
            let lambda = self.timing.base_latency() as f64
                + queue_wait
                + remote_fraction
                    * (self.numa.remote_read_extra + self.numa.link_cycles_per_line) as f64;
            blocking_misses * lambda / concurrency
        } else {
            0.0
        };

        // Shared inter-socket link capacity: every remote line occupies the
        // one link for `link_cycles_per_line` cycles, regardless of which
        // controller serves it. The link is a *downstream* stage — a remote
        // line crosses it after its controller finishes (the simulator
        // serialises completions on `link_busy`) — so in the saturated
        // regime its occupancy adds to the controller pipeline instead of
        // hiding behind it. Zero for any single-socket placement.
        let total_lines: f64 = shape
            .units
            .iter()
            .map(|u| u.lines as f64 * u.streams.len() as f64)
            .sum();
        let t_link = remote_fraction * total_lines * self.numa.link_cycles_per_line as f64;

        let cycles = t_cap.max(t_lat) + t_link;
        let bound = if t_lat > t_cap {
            ModelBound::Latency
        } else {
            ModelBound::Capacity
        };
        let time_secs = cycles / self.timing.clock_hz;
        let gbs = if time_secs > 0.0 {
            shape.reported_bytes as f64 / time_secs / 1e9
        } else {
            0.0
        };
        ModelPrediction {
            gbs,
            cycles,
            time_secs,
            efficiency,
            bound,
            concurrent_controllers: spread,
        }
    }

    /// The advisor's phase analysis over one interleave period, reweighted
    /// in cycles: a blocking unit (load / read-for-ownership) costs
    /// `read_service`, a write-back costs `write_service`. With equal
    /// weights this reduces exactly to `LayoutAdvisor::predict`; the cycle
    /// weights make write-heavy phases proportionally heavier, which is
    /// what the FB-DIMM 2:1 asymmetry does to the real controllers.
    fn unit_analysis(&self, streams: &[StreamDesc]) -> UnitAnalysis {
        let geo = self.policy.geometry();
        // On a multi-socket chip the aliasing question folds into one
        // socket's controller group (`controller(addr) % mps`): the home
        // socket picks the group, the offset picks the controller within
        // it — the same fold `LayoutAdvisor::predict` applies. On a single
        // socket `mps == n_mc` and the fold is the identity.
        let n_mc = (geo.num_controllers() as usize / self.numa.n_sockets.max(1)).max(1);
        let line = geo.line_size();
        // Exact period for bit-sliced and page-granular maps; a longer
        // averaging window for hashed policies (same choice the advisor
        // makes).
        let phases = match self.policy {
            MapPolicy::Sliced(_) | MapPolicy::PageInterleave { .. } => {
                (self.policy.interleave_period() / line) as usize
            }
            MapPolicy::XorFold { .. } => 4 * (geo.super_line() / line) as usize * n_mc,
        };
        let read = self.timing.read_service;
        let write = self.timing.write_service;
        let mut load = vec![0u64; n_mc];
        let mut convoy_time = 0u64;
        let mut distinct_sum = 0usize;
        let mut blocking_per_line = 0u64;
        for p in 0..phases {
            let mut blocking = vec![0u64; n_mc];
            for s in streams {
                let addr = s.base + p as u64 * line;
                let mc = self.policy.controller(addr) as usize % n_mc;
                let b = u64::from(s.kind.blocking());
                blocking[mc] += b * read;
                // Occupancy: the blocking read plus the buffered write-back
                // (StreamKind::buffered is in half-rate read equivalents;
                // one written line = one write_service).
                load[mc] += b * read + u64::from(s.kind.buffered() / 2) * write;
            }
            convoy_time += *blocking.iter().max().unwrap();
            distinct_sum += blocking.iter().filter(|&&b| b > 0).count();
        }
        blocking_per_line += streams
            .iter()
            .map(|s| u64::from(s.kind.blocking()))
            .sum::<u64>();

        let total: u64 = load.iter().sum();
        let ideal = total as f64 / n_mc as f64;
        let hotspot = *load.iter().max().unwrap() as f64;
        let actual = (convoy_time as f64).max(ideal).max(hotspot);
        UnitAnalysis {
            efficiency: if total == 0 { 1.0 } else { ideal / actual },
            occ_per_line: total as f64 / phases as f64,
            concurrent_controllers: distinct_sum as f64 / phases as f64,
            blocking_per_line,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::StreamUnit;

    /// The Fig. 4 setup: 64 threads, each streaming a triad over its own
    /// 512-aligned segment, arrays placed at the given offsets.
    fn triad_shape(offsets: [u64; 3], threads: u64) -> KernelShape {
        KernelShape {
            units: (0..threads)
                .map(|t| {
                    let seg = t * 4096;
                    StreamUnit::new(
                        vec![
                            StreamDesc::read(seg + offsets[0]),
                            StreamDesc::read(seg + offsets[1]),
                            StreamDesc::write(seg + offsets[2]),
                        ],
                        32,
                    )
                })
                .collect(),
            threads: threads as usize,
            reported_bytes: 3 * 8 * threads * 32 * 8,
        }
    }

    fn t2_model() -> PerfModel {
        PerfModel::for_spec(&ChipSpec::ultrasparc_t2())
    }

    #[test]
    fn aliased_triad_collapses_and_spread_triad_saturates() {
        let model = t2_model();
        let aliased = model.predict(&triad_shape([0, 0, 0], 64));
        let spread = model.predict(&triad_shape([0, 128, 256], 64));
        // Cycle-weighted efficiency: aliased convoy = 3 blocking × 12 = 36
        // vs ideal (2·12 + 36)/4 = 15 per phase.
        assert!((aliased.efficiency - 15.0 / 36.0).abs() < 1e-12);
        assert!((spread.efficiency - 1.0).abs() < 1e-12);
        assert!(
            spread.gbs > 2.0 * aliased.gbs,
            "spread {} vs aliased {} GB/s",
            spread.gbs,
            aliased.gbs
        );
        // Absolute scale: the calibrated T2 saturates near the paper's
        // measured ~13 GB/s triad, and the aliased floor sits near the
        // Fig. 4 ~4-7 GB/s dip.
        assert!(
            (10.0..18.0).contains(&spread.gbs),
            "spread {} GB/s",
            spread.gbs
        );
        assert!(
            (3.0..9.0).contains(&aliased.gbs),
            "aliased {} GB/s",
            aliased.gbs
        );
    }

    #[test]
    fn few_threads_are_latency_bound_many_are_capacity_bound() {
        let model = t2_model();
        let few = model.predict(&triad_shape([0, 128, 256], 4));
        let many = model.predict(&triad_shape([0, 128, 256], 64));
        assert_eq!(few.bound, ModelBound::Latency);
        assert!(
            many.gbs > 3.0 * few.gbs,
            "bandwidth must scale with threads"
        );
    }

    #[test]
    fn write_heavy_shapes_pay_the_fbdimm_asymmetry() {
        // Isolate the capacity term (zero the latency constants so T_lat
        // cannot mask it): four perfectly spread streams, read-only vs
        // write-back-only. The FB-DIMM southbound channel runs at half the
        // read rate, so the write shape must cost exactly
        // `write_service / read_service = 2×` the capacity cycles.
        let spec = ChipSpec::ultrasparc_t2();
        let mut timing = ModelTiming::from_spec(&spec);
        timing.extra_latency = 0;
        timing.hit_latency = 0;
        timing.command_cycles = 0;
        let model = PerfModel::new(spec.map, timing);
        let mk = |kind: fn(u64) -> StreamDesc| KernelShape {
            units: (0..64u64)
                .map(|t| StreamUnit::new((0..4).map(|j| kind(t * 4096 + j * 128)).collect(), 32))
                .collect(),
            threads: 64,
            reported_bytes: 4 * 8 * 64 * 32 * 8,
        };
        let reads = model.predict(&mk(StreamDesc::read));
        let writes = model.predict(&mk(StreamDesc::writeback));
        assert!((reads.efficiency - 1.0).abs() < 1e-12);
        assert!((writes.efficiency - 1.0).abs() < 1e-12);
        assert!(
            (writes.cycles / reads.cycles - 2.0).abs() < 1e-9,
            "write-backs must cost 2x: {} vs {} cycles",
            writes.cycles,
            reads.cycles
        );
        // On the full calibrated timing the asymmetry still shows through
        // as strictly lower copy bandwidth at equal reported bytes.
        let full = t2_model();
        let copy_shape = KernelShape {
            units: (0..64u64)
                .map(|t| {
                    StreamUnit::new(
                        vec![
                            StreamDesc::read(t * 4096),
                            StreamDesc::read(t * 4096 + 128),
                            StreamDesc::write(t * 4096 + 256),
                            StreamDesc::write(t * 4096 + 384),
                        ],
                        32,
                    )
                })
                .collect(),
            threads: 64,
            reported_bytes: 4 * 8 * 64 * 32 * 8,
        };
        let copy = full.predict(&copy_shape);
        let reads_full = full.predict(&mk(StreamDesc::read));
        assert!(
            copy.gbs < reads_full.gbs,
            "copy {} must trail read-only {} GB/s",
            copy.gbs,
            reads_full.gbs
        );
    }

    #[test]
    fn single_controller_chip_has_unit_efficiency_and_no_layout_sensitivity() {
        use t2opt_core::mapping::AddressMap;
        // A 1-MC machine: mc_bits 0 — aliasing cannot exist.
        let policy = MapPolicy::Sliced(AddressMap {
            line_bits: 6,
            mc_lo_bit: 7,
            mc_bits: 0,
            bank_lo_bit: 6,
            bank_bits: 1,
        });
        let spec = ChipSpec::ultrasparc_t2();
        let model = PerfModel::new(policy, ModelTiming::from_spec(&spec));
        let a = model.predict(&triad_shape([0, 0, 0], 16));
        let b = model.predict(&triad_shape([0, 128, 256], 16));
        assert!((a.efficiency - 1.0).abs() < 1e-12);
        assert_eq!(a, b, "offsets cannot matter with one controller");
    }

    #[test]
    fn zero_length_streams_predict_zero_time_and_bandwidth() {
        let model = t2_model();
        let empty = KernelShape {
            units: vec![StreamUnit::new(vec![StreamDesc::read(0)], 0)],
            threads: 8,
            reported_bytes: 0,
        };
        let p = model.predict(&empty);
        assert_eq!(p.cycles, 0.0);
        assert_eq!(p.gbs, 0.0);
        assert_eq!(p.mlups(0), 0.0);
        assert!((p.efficiency - 1.0).abs() < 1e-12);
        // No units at all behaves the same.
        let none = KernelShape {
            units: vec![],
            threads: 8,
            reported_bytes: 0,
        };
        assert_eq!(model.predict(&none).cycles, 0.0);
    }

    #[test]
    fn writeback_only_shapes_are_capacity_bound_with_no_blocking() {
        let model = t2_model();
        let shape = KernelShape {
            units: (0..8u64)
                .map(|t| StreamUnit::new(vec![StreamDesc::writeback(t * 4096)], 64))
                .collect(),
            threads: 8,
            reported_bytes: 8 * 64 * 64,
        };
        let p = model.predict(&shape);
        assert_eq!(p.bound, ModelBound::Capacity);
        assert_eq!(p.concurrent_controllers, 0.0);
        assert!(p.cycles > 0.0);
        assert!((p.efficiency - 1.0).abs() < 1e-12);
        assert_eq!(shape.blocking_misses(), 0);
    }

    #[test]
    fn prediction_is_invariant_under_period_translation() {
        let model = t2_model();
        let shape = triad_shape([0, 64, 384], 16);
        let period = model.policy().interleave_period();
        assert_eq!(
            model.predict(&shape),
            model.predict(&shape.translated(period))
        );
        assert_eq!(
            model.predict(&shape),
            model.predict(&shape.translated(7 * period))
        );
    }

    #[test]
    fn numa_placement_term_orders_first_touch_interleave_remote() {
        let model = PerfModel::for_spec(&ChipSpec::preset("2s-numa").unwrap());
        let shape = triad_shape([0, 128, 256], 16);
        let local = model.predict_placed(&shape, PagePlacement::FirstTouch);
        let inter = model.predict_placed(&shape, PagePlacement::Interleave);
        let remote = model.predict_placed(&shape, PagePlacement::Remote);
        assert_eq!(local, model.predict(&shape), "predict() is first-touch");
        assert!(
            local.gbs > inter.gbs && inter.gbs > remote.gbs,
            "locality must order placements: {} / {} / {} GB/s",
            local.gbs,
            inter.gbs,
            remote.gbs
        );
    }

    #[test]
    fn numa_fold_keeps_socket_local_aliasing_visible() {
        // Aliasing congruent mod the *local* period must still show up on a
        // NUMA chip: the fold maps both sockets' groups onto one. 16 threads
        // per socket — the capacity-bound regime; at lower concurrency the
        // per-socket queues never fill and the gap (correctly) narrows.
        let model = PerfModel::for_spec(&ChipSpec::preset("2s-numa").unwrap());
        let aliased = model.predict(&triad_shape([0, 0, 0], 32));
        let spread = model.predict(&triad_shape([0, 128, 256], 32));
        assert!(
            spread.gbs > 1.5 * aliased.gbs,
            "spread {} vs aliased {} GB/s",
            spread.gbs,
            aliased.gbs
        );
    }

    #[test]
    fn mlups_converts_time_to_site_updates() {
        let model = t2_model();
        let p = model.predict(&triad_shape([0, 128, 256], 64));
        let sites = 64 * 32 * 8; // one site per element
        let expect = sites as f64 / p.time_secs / 1e6;
        assert!((p.mlups(sites) - expect).abs() < 1e-9);
    }
}
