//! The workload description the model consumes.
//!
//! A kernel is a set of lockstep *units* — one per simulated thread for
//! stream kernels, one per interior row for Jacobi, one per sampled row
//! for LBM — each advancing a fixed set of concurrent access streams one
//! cache line per phase. Units carry their own absolute base addresses, so
//! a layout candidate is expressed simply by where it places the streams
//! (exactly how `t2opt_autotune::Workload::model_shape` builds shapes from
//! a `LayoutSpec`).

use serde::{Deserialize, Serialize};
use t2opt_core::advisor::StreamDesc;

/// One lockstep unit: a set of concurrent streams advancing together, and
/// how many cache lines each stream moves over the unit's lifetime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamUnit {
    /// The unit's concurrent access streams (absolute base addresses).
    pub streams: Vec<StreamDesc>,
    /// Cache lines each stream advances (0 for a degenerate empty unit).
    pub lines: u64,
}

impl StreamUnit {
    /// A unit of `streams` advancing `lines` cache lines each.
    pub fn new(streams: Vec<StreamDesc>, lines: u64) -> Self {
        StreamUnit { streams, lines }
    }
}

/// A complete workload shape: its units, the hardware-thread concurrency
/// executing them, and the byte credit used to convert predicted time into
/// reported bandwidth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelShape {
    /// All lockstep units of one run (threads / rows / sampled sites).
    pub units: Vec<StreamUnit>,
    /// Hardware threads concurrently executing units.
    pub threads: usize,
    /// Bytes the kernel reports per run (the STREAM/Fig. 7 credit, the
    /// same convention `SimStats::reported_bandwidth_gbs` uses).
    pub reported_bytes: u64,
}

impl KernelShape {
    /// Total blocking misses (loads + read-for-ownership) across all units.
    pub fn blocking_misses(&self) -> u64 {
        self.units
            .iter()
            .map(|u| {
                u.lines
                    * u.streams
                        .iter()
                        .map(|s| u64::from(s.kind.blocking()))
                        .sum::<u64>()
            })
            .sum()
    }

    /// Translates every stream base by `delta` bytes — used by the
    /// period-invariance property tests.
    pub fn translated(&self, delta: u64) -> Self {
        KernelShape {
            units: self
                .units
                .iter()
                .map(|u| {
                    StreamUnit::new(
                        u.streams
                            .iter()
                            .map(|s| StreamDesc {
                                base: s.base + delta,
                                kind: s.kind,
                            })
                            .collect(),
                        u.lines,
                    )
                })
                .collect(),
            threads: self.threads,
            reported_bytes: self.reported_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2opt_core::advisor::StreamDesc;

    #[test]
    fn blocking_misses_count_loads_and_rfo_only() {
        let shape = KernelShape {
            units: vec![StreamUnit::new(
                vec![
                    StreamDesc::read(0),
                    StreamDesc::write(128),
                    StreamDesc::writeback(256),
                ],
                10,
            )],
            threads: 1,
            reported_bytes: 0,
        };
        // Read 1 + Write (RFO) 1 + Writeback 0, × 10 lines.
        assert_eq!(shape.blocking_misses(), 20);
    }

    #[test]
    fn translation_moves_every_base() {
        let shape = KernelShape {
            units: vec![StreamUnit::new(vec![StreamDesc::read(64)], 1)],
            threads: 1,
            reported_bytes: 8,
        };
        let moved = shape.translated(512);
        assert_eq!(moved.units[0].streams[0].base, 576);
        assert_eq!(moved.reported_bytes, 8);
    }
}
