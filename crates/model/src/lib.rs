//! # t2opt-model
//!
//! An ECM-style closed-form performance model for interleaved-controller
//! chips: given a [`ChipSpec`](t2opt_core::chip::ChipSpec) and a workload
//! description (stream sets, thread count, layout candidate), predict the
//! absolute bandwidth — FB-DIMM read/write asymmetry, per-controller queue
//! contention, and convoy collapse of aliased streams included — *without
//! running the simulator*.
//!
//! The paper's §2.3 claim is that optimal layouts follow from analysis, "no
//! trial and error required". The `LayoutAdvisor` in `t2opt-core` delivers
//! the *ranking* half of that claim; this crate delivers the *absolute
//! numbers* half, in the style of the execution-cache-memory models of
//! Afzal/Hager/Wellein (arXiv:2011.00243): a kernel's runtime is the
//! maximum of a bandwidth (capacity) term and a latency (concurrency)
//! term, each derived in closed form from the chip's service times and the
//! stream set's controller distribution.
//!
//! ## The two terms
//!
//! **Capacity.** Every cache line a stream moves occupies its memory
//! controller for a service time: `read_service` cycles for a load or a
//! read-for-ownership, `write_service` for a write-back (the T2's FB-DIMM
//! channels write at half the read bandwidth, so `write_service =
//! 2 × read_service`). The advisor's phase analysis — rerun here with
//! cycle weights instead of unit weights — yields the fraction `eff ∈
//! (0, 1]` of the aggregate controller bandwidth the layout can actually
//! use (1 with perfectly spread streams, `→ 1/n_mc` in full convoy), so
//!
//! ```text
//! T_cap = Σ_lines service_cycles / (n_mc · eff)
//! ```
//!
//! **Latency.** Each thread sustains at most `outstanding` blocking misses
//! (one on the T2), and every miss pays the full round trip: crossbar +
//! DRAM latency, the southbound command slot, its own service time — plus
//! the time spent queued behind the other in-flight misses that target the
//! same controller. Aliased layouts concentrate all in-flight misses on
//! one controller (the convoy of §2.1), multiplying that queue wait by
//! `n_mc`; spread layouts divide it. With `B` blocking misses and `C`
//! concurrent misses chip-wide,
//!
//! ```text
//! Λ_eff = extra_latency + hit_latency + command_cycles + read_service
//!         + (min(C / spread, queue_depth) − 1) · read_service
//! T_lat = B · Λ_eff / C
//! ```
//!
//! where `spread` is the mean number of distinct controllers the blocking
//! units of one lockstep phase touch (the advisor's
//! `concurrent_controllers`).
//!
//! The predicted runtime is `max(T_cap, T_lat)`; bandwidth is the
//! workload's reported bytes over that time. See DESIGN.md §10 for the
//! calibration reasoning and the validation contract against the
//! simulator (Spearman ≥ 0.9 on every chip preset's offset sweep, pinned
//! in `tests/model_validation.rs` at the workspace root).
//!
//! ## Example
//!
//! ```
//! use t2opt_core::advisor::StreamDesc;
//! use t2opt_core::chip::ChipSpec;
//! use t2opt_model::{KernelShape, PerfModel, StreamUnit};
//!
//! let spec = ChipSpec::ultrasparc_t2();
//! let model = PerfModel::for_spec(&spec);
//! // 64 threads, each streaming a triad whose arrays all alias mod 512 B
//! // vs the paper's spread offsets [0, 128, 256].
//! let shape = |offsets: [u64; 3]| KernelShape {
//!     units: (0..64)
//!         .map(|t| {
//!             let seg = t * 4096; // per-thread segment, ≡ 0 mod 512
//!             StreamUnit::new(
//!                 vec![
//!                     StreamDesc::read(seg + offsets[0]),
//!                     StreamDesc::read(seg + offsets[1]),
//!                     StreamDesc::write(seg + offsets[2]),
//!                 ],
//!                 32,
//!             )
//!         })
//!         .collect(),
//!     threads: 64,
//!     reported_bytes: 3 * 8 * (1 << 14),
//! };
//! let aliased = model.predict(&shape([0, 0, 0]));
//! let spread = model.predict(&shape([0, 128, 256]));
//! assert!(spread.gbs > 2.0 * aliased.gbs);
//! ```

#![warn(missing_docs)]

pub mod predict;
pub mod shape;
pub mod timing;

pub use predict::{ModelBound, ModelPrediction, PerfModel};
pub use shape::{KernelShape, StreamUnit};
pub use timing::ModelTiming;
