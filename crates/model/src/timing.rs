//! The timing figures the closed-form model needs.
//!
//! A [`ChipSpec`] carries only what varies across topologies (mapping,
//! thread capacity, service times); the latency-side constants below are
//! the calibrated UltraSPARC T2 template values that every preset inherits
//! unchanged — the same contract `t2opt_sim::ChipConfig::from_spec` uses,
//! so model and simulator always describe the same machine. Layers that
//! hold a full simulator config (the autotuner, the bench CLIs) can
//! instead fill a [`ModelTiming`] field by field from it.

use serde::{Deserialize, Serialize};
use t2opt_core::chip::ChipSpec;

/// Calibrated T2 template: southbound cycles a read's command occupies.
const T2_COMMAND_CYCLES: u64 = 3;
/// Calibrated T2 template: fixed crossbar + DRAM miss latency, cycles.
const T2_EXTRA_LATENCY: u64 = 100;
/// Calibrated T2 template: L2 hit (load-to-use) latency, cycles.
const T2_HIT_LATENCY: u64 = 26;
/// Calibrated T2 template: request-queue slots per controller.
const T2_QUEUE_DEPTH: usize = 16;
/// Calibrated T2 template: outstanding load misses per thread (§1: the T2
/// "restricts each thread to a single outstanding cache miss").
const T2_OUTSTANDING_MISSES: usize = 1;

/// Everything the closed-form predictor needs to turn a stream set into
/// cycles and seconds. All fields are public so callers holding a richer
/// configuration (e.g. a simulator `ChipConfig`) can override the template
/// defaults field by field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelTiming {
    /// Clock frequency in Hz.
    pub clock_hz: f64,
    /// Controller occupancy per 64 B read (and read-for-ownership), cycles.
    pub read_service: u64,
    /// Controller occupancy per 64 B write-back, cycles.
    pub write_service: u64,
    /// Southbound command cycles preceding each read's data return.
    pub command_cycles: u64,
    /// Fixed additional miss latency (crossbar + DRAM), cycles.
    pub extra_latency: u64,
    /// L2 hit latency every miss also traverses, cycles.
    pub hit_latency: u64,
    /// Request-queue slots per controller — caps how many in-flight misses
    /// can actually pile up behind one controller.
    pub queue_depth: usize,
    /// Outstanding blocking misses per hardware thread.
    pub outstanding_misses: usize,
}

impl ModelTiming {
    /// Timing for a chip topology spec: the spec's clock and service times,
    /// the calibrated T2 template for the latency constants it does not
    /// carry.
    pub fn from_spec(spec: &ChipSpec) -> Self {
        ModelTiming {
            clock_hz: spec.clock_hz,
            read_service: spec.read_service,
            write_service: spec.write_service,
            command_cycles: T2_COMMAND_CYCLES,
            extra_latency: T2_EXTRA_LATENCY,
            hit_latency: T2_HIT_LATENCY,
            queue_depth: T2_QUEUE_DEPTH,
            outstanding_misses: T2_OUTSTANDING_MISSES,
        }
    }

    /// The full miss round trip without any queueing, in cycles.
    pub fn base_latency(&self) -> u64 {
        self.extra_latency + self.hit_latency + self.command_cycles + self.read_service
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t2_spec_timing_matches_the_calibrated_template() {
        let t = ModelTiming::from_spec(&ChipSpec::ultrasparc_t2());
        assert_eq!(t.read_service, 12);
        assert_eq!(t.write_service, 24);
        assert_eq!(t.base_latency(), 100 + 26 + 3 + 12);
        assert_eq!(t.queue_depth, 16);
        assert_eq!(t.outstanding_misses, 1);
    }

    #[test]
    fn presets_override_only_what_they_carry() {
        let budget = ModelTiming::from_spec(&ChipSpec::budget_2mc());
        assert_eq!(budget.read_service, 16);
        assert_eq!(budget.write_service, 32);
        // Latency constants stay on the shared template.
        assert_eq!(budget.extra_latency, 100);
        assert_eq!(budget.hit_latency, 26);
    }
}
