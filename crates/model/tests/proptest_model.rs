//! Property-based tests for the closed-form performance model: the
//! efficiency statistic stays in (0, 1], predictions are invariant under
//! translation by the chip's interleave period, and the predicted time is
//! monotone in the work.

use proptest::prelude::*;
use t2opt_core::advisor::{StreamDesc, StreamKind};
use t2opt_core::chip::{ChipSpec, PRESET_NAMES};
use t2opt_model::{KernelShape, PerfModel, StreamUnit};

/// Arbitrary kernel shapes on a given address range: 1–5 units of 1–5
/// streams each, any mix of kinds, non-trivial line counts.
fn arb_shape() -> impl Strategy<Value = KernelShape> {
    (
        proptest::collection::vec(
            proptest::collection::vec((0u64..65_536, 0u8..3), 1..6),
            1..6,
        ),
        1u64..256,
        1usize..64,
    )
        .prop_map(|(units, lines, threads)| KernelShape {
            units: units
                .into_iter()
                .map(|streams| {
                    StreamUnit::new(
                        streams
                            .into_iter()
                            .map(|(base, kind)| StreamDesc {
                                base,
                                kind: match kind {
                                    0 => StreamKind::Read,
                                    1 => StreamKind::Write,
                                    _ => StreamKind::Writeback,
                                },
                            })
                            .collect(),
                        lines,
                    )
                })
                .collect(),
            threads,
            reported_bytes: lines * 64,
        })
}

proptest! {
    /// Model efficiency is in (0, 1] for every preset and any stream mix.
    #[test]
    fn efficiency_stays_in_unit_interval(shape in arb_shape(), preset in 0usize..4) {
        let spec = ChipSpec::preset(PRESET_NAMES[preset]).unwrap();
        let model = PerfModel::for_spec(&spec);
        let p = model.predict(&shape);
        prop_assert!(
            p.efficiency > 0.0 && p.efficiency <= 1.0 + 1e-12,
            "efficiency {} out of (0, 1] on {}",
            p.efficiency,
            spec.name
        );
        prop_assert!(p.cycles >= 0.0 && p.cycles.is_finite());
        prop_assert!(p.gbs >= 0.0 && p.gbs.is_finite());
    }

    /// Translating every stream by any multiple of the chip's interleave
    /// period leaves the prediction bitwise unchanged (the mapping is
    /// periodic, and the model must inherit that exactly).
    #[test]
    fn prediction_invariant_under_period_translation(
        shape in arb_shape(),
        preset in 0usize..4,
        periods in 1u64..8,
    ) {
        let spec = ChipSpec::preset(PRESET_NAMES[preset]).unwrap();
        let model = PerfModel::for_spec(&spec);
        let delta = periods * spec.interleave_period() as u64;
        prop_assert_eq!(model.predict(&shape), model.predict(&shape.translated(delta)));
    }

    /// Sub-period translations may change the prediction, but never the
    /// invariants; and doubling every unit's line count can only increase
    /// the predicted cycles (work monotonicity).
    #[test]
    fn more_lines_never_run_faster(shape in arb_shape()) {
        let model = PerfModel::for_spec(&ChipSpec::ultrasparc_t2());
        let base = model.predict(&shape);
        let doubled = KernelShape {
            units: shape
                .units
                .iter()
                .map(|u| StreamUnit::new(u.streams.clone(), u.lines * 2))
                .collect(),
            ..shape.clone()
        };
        let big = model.predict(&doubled);
        prop_assert!(big.cycles >= base.cycles);
    }
}
